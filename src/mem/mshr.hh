/**
 * @file
 * Miss Status Holding Registers — the non-blocking cache mechanism.
 *
 * Each outstanding data-cache miss occupies one MSHR (Kroft's
 * lockup-free organization, [9]). Secondary misses to a line already
 * being fetched coalesce into the existing entry. When no MSHR is
 * free the LSU stalls until one retires — a machine with a single
 * MSHR therefore serializes all cache misses, which is the effect
 * Figure 7 quantifies.
 */

#ifndef AURORA_MEM_MSHR_HH
#define AURORA_MEM_MSHR_HH

#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace aurora::mem
{

/** File of miss status holding registers. */
class MshrFile
{
  public:
    /** One in-flight line fetch. */
    struct Entry
    {
        Addr line = 0;
        Cycle ready = 0;
        bool valid = false;
    };

    /** @param num_entries Table 1: 1 / 2 / 4. */
    explicit MshrFile(unsigned num_entries);

    /** Number of registers. */
    unsigned numEntries() const
    {
        return static_cast<unsigned>(entries_.size());
    }

    /** Occupied registers. */
    unsigned inUse() const { return inUse_; }

    /** True when no register is free. */
    bool full() const { return inUse_ == entries_.size(); }

    /**
     * Find the in-flight entry covering @p line, or nullptr. A match
     * is a secondary miss that coalesces (no new transaction).
     */
    const Entry *find(Addr line) const;

    /**
     * Reserve a register for @p line completing at @p ready.
     * Panics when full — the caller must stall instead.
     */
    void allocate(Addr line, Cycle ready);

    /** Release every register whose fetch completed by @p now. */
    void retire(Cycle now);

    /**
     * Release every occupied register (end-of-run drain). Keeps the
     * allocation/release ledger balanced for the post-run auditor.
     */
    void drainAll() { retire(NEVER); }

    /** Earliest completion among occupied registers (NEVER if none). */
    Cycle nextReady() const;

    /// @name Statistics
    /// @{
    Count allocations() const { return allocations_; }
    Count releases() const { return releases_; }
    Count coalesced() const { return coalesced_; }
    /// @}

    /** Record a coalesced secondary miss (caller found an entry). */
    void noteCoalesced() { ++coalesced_; }

  private:
    std::vector<Entry> entries_;
    unsigned inUse_ = 0;
    Count allocations_ = 0;
    Count releases_ = 0;
    Count coalesced_ = 0;
};

} // namespace aurora::mem

#endif // AURORA_MEM_MSHR_HH
