/**
 * @file
 * Direct-mapped cache tag store.
 *
 * Trace-driven timing simulation only needs hit/miss decisions, so the
 * cache holds tags, not data. Both Aurora III primary caches are
 * direct-mapped: the on-chip pre-decoded instruction cache and the
 * external pipelined data cache (16/32/64 KB SRAM chips).
 */

#ifndef AURORA_MEM_CACHE_HH
#define AURORA_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace aurora::mem
{

/** Direct-mapped, write-back-free tag array. */
class DirectMappedCache
{
  public:
    /**
     * @param size_bytes total capacity; must be a power of two.
     * @param line_bytes line size; must be a power of two.
     */
    DirectMappedCache(std::uint32_t size_bytes,
                      std::uint32_t line_bytes);

    /** Line size in bytes. */
    std::uint32_t lineBytes() const { return lineBytes_; }
    /** Total capacity in bytes. */
    std::uint32_t sizeBytes() const { return sizeBytes_; }
    /** Number of lines. */
    std::uint32_t numLines() const { return numLines_; }

    /** Line-aligned address containing @p addr. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(lineBytes_ - 1);
    }

    /**
     * Look up @p addr, recording the access in the hit-rate stats.
     * Does not modify the tag array.
     */
    bool access(Addr addr);

    /** Look up @p addr without recording statistics. */
    bool probe(Addr addr) const;

    /**
     * Install the line containing @p addr.
     * @return the line address evicted from the slot, if any (used
     *         to feed a victim cache).
     */
    std::optional<Addr> fill(Addr addr);

    /** Invalidate the line containing @p addr if present. */
    void invalidate(Addr addr);

    /** Invalidate everything. */
    void reset();

    /** Lookup statistics since construction/reset. */
    const Ratio &hitRate() const { return hits_; }

  private:
    std::uint32_t
    indexOf(Addr addr) const
    {
        return (addr / lineBytes_) & (numLines_ - 1);
    }

    std::uint32_t sizeBytes_;
    std::uint32_t lineBytes_;
    std::uint32_t numLines_;
    std::vector<Addr> tags_;   ///< line-aligned address per slot
    std::vector<bool> valid_;
    Ratio hits_;
};

} // namespace aurora::mem

#endif // AURORA_MEM_CACHE_HH
