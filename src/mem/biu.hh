/**
 * @file
 * Bus Interface Unit + secondary memory system model.
 *
 * The Aurora III BIU connects the IPU to the off-chip MMU over a
 * bidirectional 32-bit split-transaction bus clocked on both edges
 * (§2, [14]). For the resource study the paper abstracts the MMU and
 * main memory behind an *average secondary latency* of 17 or 35
 * cycles; this model does the same and adds the two properties that
 * matter to the mechanisms under study:
 *
 *  - finite bandwidth: each line transfer occupies the bus for a
 *    configurable number of cycles, so demand misses, prefetches and
 *    write-cache evictions compete;
 *  - finite buffering: the transmit queue bounds how many transactions
 *    can be outstanding, which is what starves prefetching in the
 *    small model (§5.2).
 */

#ifndef AURORA_MEM_BIU_HH
#define AURORA_MEM_BIU_HH

#include <deque>

#include "util/stats.hh"
#include "util/types.hh"

namespace aurora::mem
{

/** BIU and secondary memory timing parameters. */
struct BiuConfig
{
    /** Average secondary (MMU + memory) access latency in cycles. */
    Cycle latency = 17;
    /** Bus occupancy of one cache-line transfer, cycles. */
    Cycle line_occupancy = 4;
    /** Maximum simultaneously outstanding transactions. */
    unsigned queue_depth = 8;
    /**
     * Model the §2 collision-based protocol explicitly: a transmit
     * that starts while an inbound reply is landing collides and
     * retries. Off by default — the study's "average latency"
     * already folds protocol effects in, so enabling this is a
     * fidelity ablation, not the calibrated configuration.
     */
    bool model_collisions = false;
    /** Retry penalty when a collision occurs, cycles. */
    Cycle collision_penalty = 2;
};

/** Split-transaction bus with latency/bandwidth/queueing model. */
class Biu
{
  public:
    explicit Biu(const BiuConfig &config);

    /**
     * True when the transmit queue can take another transaction at
     * @p now. Prefetchers must check this and yield to demand traffic.
     */
    bool canAccept(Cycle now) const;

    /**
     * Issue a line read (demand miss or prefetch).
     *
     * @param now       issue cycle.
     * @param prefetch  statistical classification only.
     * @return cycle at which the line is fully on chip.
     */
    Cycle requestLine(Cycle now, bool prefetch);

    /**
     * Issue a write transaction (write-cache eviction). Writes are
     * fire-and-forget for the pipeline; they only consume bandwidth.
     */
    void postWrite(Cycle now);

    /**
     * Issue a non-data round trip (e.g. an MMU write-validation
     * query). Occupies one bus slot; returns the reply cycle.
     */
    Cycle roundTrip(Cycle now);

    /// @name Statistics
    /// @{
    Count demandReads() const { return demandReads_; }
    Count prefetchReads() const { return prefetchReads_; }
    Count writes() const { return writes_; }
    Count roundTrips() const { return roundTrips_; }
    /** Total cycles the bus spent transferring. */
    Cycle busyCycles() const { return busyCycles_; }
    /** Protocol collisions (when model_collisions is on). */
    Count collisions() const { return collisions_; }
    /// @}

    const BiuConfig &config() const { return config_; }

  private:
    /** Reserve the bus; returns the transfer start cycle. */
    Cycle reserve(Cycle now);

    BiuConfig config_;
    Cycle busFree_ = 0;
    /** Completion times of in-flight reads (collision detection). */
    std::deque<Cycle> pendingReplies_;
    Count collisions_ = 0;
    Count demandReads_ = 0;
    Count prefetchReads_ = 0;
    Count writes_ = 0;
    Count roundTrips_ = 0;
    Cycle busyCycles_ = 0;
};

} // namespace aurora::mem

#endif // AURORA_MEM_BIU_HH
