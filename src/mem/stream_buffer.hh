/**
 * @file
 * Jouppi-style prefetch stream buffers — the Aurora III Prefetch Unit.
 *
 * A small pool of FIFO stream buffers shared by the instruction and
 * data streams (the paper's small model has only two buffers total,
 * "which leads to thrashing between instruction and data references").
 * On a primary-cache miss the buffers are probed; a hit supplies the
 * line (possibly still in flight) and triggers fetch-ahead of further
 * sequential lines; a miss allocates the least-recently-used buffer,
 * which initially fetches only the single next line (§2.2).
 */

#ifndef AURORA_MEM_STREAM_BUFFER_HH
#define AURORA_MEM_STREAM_BUFFER_HH

#include <deque>
#include <vector>

#include "biu.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace aurora::mem
{

/** Prefetch unit configuration. */
struct PrefetchConfig
{
    /** Number of stream buffers (Table 1: 2 / 4 / 8). */
    unsigned num_buffers = 4;
    /**
     * Prefetch lines per buffer. Two lines matches §5.2's statement
     * that the baseline's prefetch buffers cost ~20% of the 2 KB
     * instruction cache (4 buffers x 2 lines x 320 RBE / 12000 RBE).
     */
    unsigned depth = 2;
    /** Line size in bytes (shared with the caches). */
    std::uint32_t line_bytes = 32;
    /** Master enable (Figure 5 removes prefetching entirely). */
    bool enabled = true;
};

/** Pool of sequential-stream prefetch buffers in front of the BIU. */
class PrefetchUnit
{
  public:
    /** Outcome of probing the buffers on a primary-cache miss. */
    struct Result
    {
        /** The missing line was found in a buffer. */
        bool hit = false;
        /** Cycle the line is (or was) available on chip. */
        Cycle ready = 0;
    };

    PrefetchUnit(const PrefetchConfig &config, Biu &biu);

    /**
     * Handle a primary-cache miss for the line containing @p addr.
     *
     * On a buffer hit the entry is consumed, stale entries ahead of it
     * are shifted out, and the buffer tops itself up with further
     * sequential prefetches (bandwidth permitting). On a miss the LRU
     * buffer is re-allocated to the new stream and the demand line is
     * fetched from the BIU.
     *
     * @param addr            missing address.
     * @param now             current cycle.
     * @param is_instruction  I-stream vs D-stream (statistics + the
     *                        thrashing behaviour both flow from the
     *                        shared pool).
     * @return hit/ready outcome; ready covers the full demand fetch
     *         when the probe missed.
     */
    Result missLookup(Addr addr, Cycle now, bool is_instruction);

    /** I-stream prefetch hit rate (Table 3). */
    const Ratio &instHitRate() const { return iHits_; }
    /** D-stream prefetch hit rate (Table 4). */
    const Ratio &dataHitRate() const { return dHits_; }
    /** Prefetched lines held across all active buffers. */
    unsigned
    entriesInFlight() const
    {
        unsigned entries = 0;
        for (const Buffer &buf : buffers_)
            if (buf.active)
                entries += static_cast<unsigned>(buf.entries.size());
        return entries;
    }

    const PrefetchConfig &config() const { return config_; }

  private:
    struct Entry
    {
        Addr line = 0;
        Cycle ready = 0;
    };

    struct Buffer
    {
        std::deque<Entry> entries;
        Addr next_line = 0;   ///< next sequential line to prefetch
        Cycle last_used = 0;
        bool active = false;
    };

    /** Fill @p buf with sequential prefetches while bandwidth lasts. */
    void topUp(Buffer &buf, Cycle now);

    PrefetchConfig config_;
    Biu &biu_;
    std::vector<Buffer> buffers_;
    Ratio iHits_;
    Ratio dHits_;
};

} // namespace aurora::mem

#endif // AURORA_MEM_STREAM_BUFFER_HH
