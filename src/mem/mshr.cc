#include "mshr.hh"

#include "util/logging.hh"

namespace aurora::mem
{

MshrFile::MshrFile(unsigned num_entries)
{
    AURORA_ASSERT(num_entries > 0, "MSHR file needs at least one entry");
    entries_.resize(num_entries);
}

const MshrFile::Entry *
MshrFile::find(Addr line) const
{
    for (const Entry &entry : entries_)
        if (entry.valid && entry.line == line)
            return &entry;
    return nullptr;
}

void
MshrFile::allocate(Addr line, Cycle ready)
{
    for (Entry &entry : entries_) {
        if (entry.valid)
            continue;
        entry = {line, ready, true};
        ++inUse_;
        ++allocations_;
        return;
    }
    AURORA_PANIC("MSHR allocate with no free entry");
}

void
MshrFile::retire(Cycle now)
{
    for (Entry &entry : entries_) {
        if (entry.valid && entry.ready <= now) {
            entry.valid = false;
            --inUse_;
            ++releases_;
        }
    }
}

Cycle
MshrFile::nextReady() const
{
    Cycle best = NEVER;
    for (const Entry &entry : entries_)
        if (entry.valid && entry.ready < best)
            best = entry.ready;
    return best;
}

} // namespace aurora::mem
