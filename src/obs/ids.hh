/**
 * @file
 * Deterministic trace/span identity derivation for fleet tracing.
 *
 * A grid's 64-bit trace id is minted once — at Submit admission in
 * aurora_serve or at grid start in aurora_swarm — and every process
 * that touches the grid derives its span ids from (trace id, stable
 * coordinates) with the pure functions below. Only the trace id ever
 * crosses the wire: the coordinator and a shard compute the *same*
 * span id for the same dispatch independently, which is what lets a
 * merged Chrome trace parent a shard's attempt spans under the
 * coordinator's dispatch span without any id-exchange protocol.
 *
 * Identity scheme (parent → child):
 *
 *     rootSpanId(trace)                 = trace            (parent 0)
 *       stageSpanId(trace, name)        admission / merge  (parent root)
 *       jobSpanId(trace, job)           queue+run of job   (parent root)
 *         attemptSpanId(trace, job, k)  one attempt        (parent job)
 *       leaseSpanId(trace, epoch)       one shard lease    (parent root)
 *         dispatchSpanId(trace, t, e)   ticket t on epoch e (parent lease)
 *           attemptSpanId(.., epoch=e)  shard-side attempt (parent dispatch)
 *
 * All ids are nonzero; 0 is the reserved "no parent" / "no trace"
 * sentinel throughout the wire protocols and span records.
 */

#ifndef AURORA_OBS_IDS_HH
#define AURORA_OBS_IDS_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace aurora::obs
{

/** splitmix64 finalizer — the repo-standard bit mixer. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

namespace detail
{

/** Domain-separation salts: one per span family so e.g. job 5 and
 *  lease epoch 5 can never collide. */
enum : std::uint64_t
{
    FAMILY_JOB = 0x6f62732e6a6f6221ull,
    FAMILY_ATTEMPT = 0x6f62732e61747421ull,
    FAMILY_LEASE = 0x6f62732e6c736521ull,
    FAMILY_DISPATCH = 0x6f62732e64737021ull,
    FAMILY_STAGE = 0x6f62732e73746721ull,
};

constexpr std::uint64_t
derive(std::uint64_t trace, std::uint64_t family, std::uint64_t a,
       std::uint64_t b = 0)
{
    std::uint64_t x = mix64(trace ^ family);
    x = mix64(x ^ a);
    x = mix64(x ^ b);
    return x ? x : 1;
}

constexpr std::uint64_t
fnv1a64(std::string_view text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace detail

/**
 * Mint the grid's trace id from its content fingerprint. Pure, so a
 * SIGKILL-resumed daemon re-mints the identical id from the spooled
 * manifest without any new persistent field. Never returns 0.
 */
constexpr std::uint64_t
traceIdForGrid(std::uint64_t fingerprint)
{
    const std::uint64_t id = mix64(fingerprint ^ 0x6175726f72612e31ull);
    return id ? id : 1;
}

/** The grid-wide root span: its id *is* the trace id (parent 0). */
constexpr std::uint64_t
rootSpanId(std::uint64_t trace_id)
{
    return trace_id;
}

/** Named one-off stage under the root ("admission", "merge", ...). */
constexpr std::uint64_t
stageSpanId(std::uint64_t trace_id, std::string_view stage)
{
    return detail::derive(trace_id, detail::FAMILY_STAGE,
                          detail::fnv1a64(stage));
}

/** Queue-to-completion span of one grid job (parent = root). */
constexpr std::uint64_t
jobSpanId(std::uint64_t trace_id, std::uint64_t job_index)
{
    return detail::derive(trace_id, detail::FAMILY_JOB, job_index);
}

/**
 * One execution attempt of a job. @p epoch distinguishes shard
 * incarnations (a migrated job may run attempt 1 on two epochs);
 * worker-pool attempts use epoch 0.
 */
constexpr std::uint64_t
attemptSpanId(std::uint64_t trace_id, std::uint64_t job_index,
              std::uint64_t attempt, std::uint64_t epoch = 0)
{
    return detail::derive(trace_id, detail::FAMILY_ATTEMPT, job_index,
                          (attempt << 32) ^ epoch);
}

/** Lifetime of one shard lease epoch (parent = root). */
constexpr std::uint64_t
leaseSpanId(std::uint64_t trace_id, std::uint64_t epoch)
{
    return detail::derive(trace_id, detail::FAMILY_LEASE, epoch);
}

/**
 * One ticket assigned under one lease epoch (parent = that lease).
 * Migration re-dispatches the same ticket under a new epoch — a new
 * span, so both placements stay visible in the trace.
 */
constexpr std::uint64_t
dispatchSpanId(std::uint64_t trace_id, std::uint64_t ticket,
               std::uint64_t epoch)
{
    return detail::derive(trace_id, detail::FAMILY_DISPATCH, ticket,
                          epoch);
}

/** "0x%016x" rendering — u64 ids survive JSON only as strings. */
inline std::string
hexId(std::uint64_t id)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(id));
    return std::string(buf);
}

} // namespace aurora::obs

#endif // AURORA_OBS_IDS_HH
