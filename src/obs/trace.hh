/**
 * @file
 * Causal spans: the cross-process half of the tracing plane.
 *
 * A Span is one parented interval (or instant) of a grid's life —
 * admission, queue wait, dispatch, a shard attempt, a lease epoch,
 * the merge. Every process collects its spans locally (SpanLog in
 * memory, SpanFileWriter as crash-durable NDJSON `aurora.spans.v1`
 * lines) and the grid's owner folds them into one Chrome trace with
 * writeChromeTrace(). Parentage is by derived ids (obs/ids.hh), so
 * folding is pure concatenation — no cross-process id fixup.
 *
 * Timestamps are each recording process's own steady-clock
 * milliseconds; tracks are keyed (pid, tid) so per-track monotonicity
 * holds even though processes' clocks are not aligned.
 *
 * The span file format follows the journal's durability contract: one
 * flushed line per span, a torn tail (crash mid-write) is detected
 * and dropped by loadSpanFile(), mid-file corruption is an error.
 */

#ifndef AURORA_OBS_TRACE_HH
#define AURORA_OBS_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aurora::harness
{
class SweepTimeline;
}

namespace aurora::obs
{

/** One parented interval (or instant) of a traced grid. */
struct Span
{
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    /** 0 = root (no parent). */
    std::uint64_t parent_id = 0;
    /** Display name ("grid", "lease e3", "espresso@baseline", ...). */
    std::string name;
    /** Stable category: admission|queue|dispatch|attempt|lease|
     *  migrate|merge|grid|... (doubles as the Chrome trace cat). */
    std::string cat;
    /** Trace-view process track (0 = serve, 1 = swarm, 100+e = shard
     *  epoch e). */
    std::uint32_t pid = 0;
    /** Thread track within the process. */
    std::uint32_t tid = 0;
    /** Microseconds on the recording process's steady clock
     *  (1 wall ms = 1000 trace µs, as writeTimelineTrace). */
    double ts_us = 0.0;
    double dur_us = 0.0;
    /** Zero-length marker event (journal replay, migration, ...). */
    bool instant = false;
    /** Grid job index; meaningful when has_job. */
    std::uint64_t job = 0;
    bool has_job = false;
    /** Attempt number for attempt spans (0 otherwise). */
    std::uint32_t attempt = 0;
    /** Failure text for failed/timeout attempt spans. */
    std::string error;
};

/** Thread-safe in-memory span collector. */
class SpanLog
{
  public:
    void add(Span span);

    /** Append a whole batch (shard span-file fold-in). */
    void addAll(const std::vector<Span> &spans);

    std::vector<Span> spans() const;
    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::vector<Span> spans_;
};

/** One `aurora.spans.v1` NDJSON line (no trailing newline). */
std::string spanJsonLine(const Span &span);

/**
 * Append-only crash-durable span sink: one flushed NDJSON line per
 * span. Shards write their attempt spans through this so a SIGKILLed
 * worker's completed spans survive for the coordinator's fold-in.
 */
class SpanFileWriter
{
  public:
    /** Opens (truncates) @p path; raises SimError(BadTrace) on
     *  failure. */
    explicit SpanFileWriter(const std::string &path);
    ~SpanFileWriter();

    SpanFileWriter(const SpanFileWriter &) = delete;
    SpanFileWriter &operator=(const SpanFileWriter &) = delete;

    /** Render, write, flush one span. */
    void append(const Span &span);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::mutex mutex_;
};

/** loadSpanFile() result. */
struct LoadedSpans
{
    std::vector<Span> spans;
    /** A torn trailing line (crash mid-append) was dropped. */
    bool dropped_tail = false;
};

/**
 * Read an `aurora.spans.v1` file back. A torn final line — no
 * newline, or unparseable JSON at EOF — is dropped (dropped_tail);
 * malformed JSON elsewhere raises SimError(BadTrace) with the byte
 * offset. A missing file raises SimError(BadTrace).
 */
LoadedSpans loadSpanFile(const std::string &path);

/**
 * Convert a SweepTimeline's attempt records to parented spans:
 * attempt k of job j becomes attemptSpanId(trace, j, k, epoch) with
 * parent @p parent_of (j) — jobSpanId for the worker-pool path, the
 * dispatch span for a shard. Resumed replays become instants. Span
 * tids keep the timeline's dense worker ids.
 */
std::vector<Span> spansFromTimeline(
    const harness::SweepTimeline &timeline, std::uint64_t trace_id,
    std::uint32_t pid, std::uint64_t epoch,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>
        *job_parents = nullptr);

/** (pid, display name) pair for the trace's process directory. */
struct ProcessName
{
    std::uint32_t pid = 0;
    std::string name;
};

/**
 * Render spans as one Chrome trace-event document. Spans are sorted
 * by (pid, tid, ts, span id) so every track is time-monotone; each
 * event carries trace_id/span_id/parent_id as 0x-hex string args
 * (u64 ids do not survive JSON doubles) plus job/attempt/error when
 * set.
 */
void writeChromeTrace(std::ostream &os, const std::vector<Span> &spans,
                      const std::vector<ProcessName> &processes);

} // namespace aurora::obs

#endif // AURORA_OBS_TRACE_HH
