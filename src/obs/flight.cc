#include "flight.hh"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "telemetry/json.hh"
#include "util/sim_error.hh"

namespace aurora::obs
{

namespace
{

std::uint64_t
monotonicNs()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

/** Hand-rolled u64 → decimal for the signal path (no snprintf). */
std::size_t
renderU64(std::uint64_t value, char *out)
{
    char tmp[20];
    std::size_t n = 0;
    do {
        tmp[n++] = static_cast<char>('0' + value % 10);
        value /= 10;
    } while (value != 0);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = tmp[n - 1 - i];
    return n;
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity ? capacity : 1), epoch_ns_(monotonicNs())
{
    ring_.resize(capacity_);
}

FlightRecorder::~FlightRecorder()
{
    const int fd = fd_.exchange(-1, std::memory_order_relaxed);
    if (fd >= 0)
        ::close(fd);
}

std::uint64_t
FlightRecorder::elapsedMs() const
{
    return (monotonicNs() - epoch_ns_) / 1'000'000ull;
}

void
FlightRecorder::note(std::string_view event, std::string_view code,
                     std::string_view detail)
{
    std::ostringstream os;
    // seq is claimed under the mutex below so ring order, file order,
    // and the numbering all agree; render with a placeholder first.
    os << "\"ms\": " << elapsedMs() << ", \"event\": \""
       << telemetry::jsonEscape(event) << '"';
    if (!code.empty())
        os << ", \"code\": \"" << telemetry::jsonEscape(code) << '"';
    if (!detail.empty())
        os << ", \"detail\": \"" << telemetry::jsonEscape(detail)
           << '"';
    const std::string tail = os.str();

    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t seq = seq_.fetch_add(1,
                                             std::memory_order_relaxed);
    std::string line = "{\"schema\": \"aurora.flight.v1\", \"seq\": " +
                       std::to_string(seq) + ", " + tail + "}";
    const int fd = fd_.load(std::memory_order_relaxed);
    if (fd >= 0) {
        std::string framed = line + "\n";
        // One write() per event: a SIGKILL between events never tears
        // more than the line in flight (the reader's tail contract).
        (void)!::write(fd, framed.data(), framed.size());
    }
    ring_[seq % capacity_] = std::move(line);
}

void
FlightRecorder::spoolTo(const std::string &path)
{
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_APPEND
                              | O_CLOEXEC,
                          0644);
    if (fd < 0)
        util::raiseError(util::SimErrorCode::BadTrace,
                         "cannot open flight spool '", path,
                         "': ", std::strerror(errno));
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t next = seq_.load(std::memory_order_relaxed);
    const std::uint64_t first =
        next > capacity_ ? next - capacity_ : 0;
    for (std::uint64_t s = first; s < next; ++s) {
        const std::string &line = ring_[s % capacity_];
        if (line.empty())
            continue;
        std::string framed = line + "\n";
        (void)!::write(fd, framed.data(), framed.size());
    }
    const int old = fd_.exchange(fd, std::memory_order_relaxed);
    if (old >= 0)
        ::close(old);
}

void
FlightRecorder::dump(const char *reason) noexcept
{
    const int fd = fd_.load(std::memory_order_relaxed);
    if (fd < 0)
        return;
    if (dumping_)
        return;
    dumping_ = 1;

    // Assembled with memcpy + a hand-rolled integer renderer only:
    // this runs inside signal handlers, where snprintf/malloc/locks
    // are all off the table.
    char buf[512];
    std::size_t n = 0;
    const auto put = [&](const char *text) {
        const std::size_t len = std::strlen(text);
        if (n + len < sizeof(buf)) {
            std::memcpy(buf + n, text, len);
            n += len;
        }
    };
    put("{\"schema\": \"aurora.flight.v1\", \"seq\": ");
    char num[20];
    const std::size_t digits =
        renderU64(seq_.load(std::memory_order_relaxed), num);
    if (n + digits < sizeof(buf)) {
        std::memcpy(buf + n, num, digits);
        n += digits;
    }
    put(", \"event\": \"flight.dump\", \"detail\": \"");
    if (reason)
        put(reason);
    put("\"}\n");
    (void)!::write(fd, buf, n);
    dumping_ = 0;
}

std::vector<std::string>
FlightRecorder::lines() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t next = seq_.load(std::memory_order_relaxed);
    const std::uint64_t first =
        next > capacity_ ? next - capacity_ : 0;
    std::vector<std::string> out;
    out.reserve(static_cast<std::size_t>(next - first));
    for (std::uint64_t s = first; s < next; ++s)
        if (!ring_[s % capacity_].empty())
            out.push_back(ring_[s % capacity_]);
    return out;
}

namespace
{

std::optional<FlightEvent>
parseFlightLine(std::string_view line, std::string *error)
{
    const std::optional<telemetry::JsonValue> doc =
        telemetry::parseJson(line, error);
    if (!doc)
        return std::nullopt;
    if (!doc->isObject()) {
        if (error)
            *error = "flight line is not a JSON object";
        return std::nullopt;
    }
    const telemetry::JsonValue *schema = doc->find("schema");
    if (!schema || !schema->isString() ||
        schema->string != "aurora.flight.v1") {
        if (error)
            *error = "missing or unknown flight schema tag";
        return std::nullopt;
    }
    const telemetry::JsonValue *seq = doc->find("seq");
    const telemetry::JsonValue *event = doc->find("event");
    if (!seq || !seq->isNumber() || !event || !event->isString()) {
        if (error)
            *error = "flight line missing seq or event";
        return std::nullopt;
    }
    FlightEvent ev;
    ev.seq = static_cast<std::uint64_t>(seq->number);
    ev.event = event->string;
    if (const telemetry::JsonValue *ms = doc->find("ms");
        ms && ms->isNumber())
        ev.ms = static_cast<std::uint64_t>(ms->number);
    if (const telemetry::JsonValue *code = doc->find("code");
        code && code->isString())
        ev.code = code->string;
    if (const telemetry::JsonValue *detail = doc->find("detail");
        detail && detail->isString())
        ev.detail = detail->string;
    return ev;
}

} // namespace

LoadedFlight
loadFlightFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        util::raiseError(util::SimErrorCode::BadTrace,
                         "cannot open flight file '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    LoadedFlight loaded;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const bool torn_candidate = eol == std::string::npos;
        const std::string_view line(
            text.data() + pos,
            (torn_candidate ? text.size() : eol) - pos);
        const std::size_t line_start = pos;
        pos = torn_candidate ? text.size() : eol + 1;
        if (line.empty())
            continue;
        std::string error;
        std::optional<FlightEvent> ev = parseFlightLine(line, &error);
        if (!ev) {
            if (torn_candidate) {
                loaded.dropped_tail = true;
                break;
            }
            util::raiseError(util::SimErrorCode::BadTrace, "'", path,
                             "': bad flight line at byte ", line_start,
                             ": ", error);
        }
        loaded.events.push_back(std::move(*ev));
    }
    return loaded;
}

} // namespace aurora::obs
