#include "trace.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "harness/sweep_trace.hh"
#include "obs/ids.hh"
#include "telemetry/json.hh"
#include "telemetry/trace_event.hh"
#include "util/sim_error.hh"

namespace aurora::obs
{

void
SpanLog::add(Span span)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(span));
}

void
SpanLog::addAll(const std::vector<Span> &spans)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    spans_.insert(spans_.end(), spans.begin(), spans.end());
}

std::vector<Span>
SpanLog::spans() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

std::size_t
SpanLog::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

std::string
spanJsonLine(const Span &span)
{
    std::ostringstream os;
    os << "{\"schema\": \"aurora.spans.v1\""
       << ", \"trace\": \"" << hexId(span.trace_id) << '"'
       << ", \"span\": \"" << hexId(span.span_id) << '"'
       << ", \"parent\": \"" << hexId(span.parent_id) << '"'
       << ", \"name\": \"" << telemetry::jsonEscape(span.name) << '"'
       << ", \"cat\": \"" << telemetry::jsonEscape(span.cat) << '"'
       << ", \"pid\": " << span.pid << ", \"tid\": " << span.tid
       << ", \"ts_us\": " << telemetry::jsonNumber(span.ts_us)
       << ", \"dur_us\": " << telemetry::jsonNumber(span.dur_us);
    if (span.instant)
        os << ", \"instant\": true";
    if (span.has_job)
        os << ", \"job\": " << span.job;
    if (span.attempt != 0)
        os << ", \"attempt\": " << span.attempt;
    if (!span.error.empty())
        os << ", \"error\": \"" << telemetry::jsonEscape(span.error)
           << '"';
    os << '}';
    return os.str();
}

SpanFileWriter::SpanFileWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        util::raiseError(util::SimErrorCode::BadTrace,
                         "cannot open span file '", path,
                         "': ", std::strerror(errno));
}

SpanFileWriter::~SpanFileWriter()
{
    if (file_)
        std::fclose(file_);
}

void
SpanFileWriter::append(const Span &span)
{
    const std::string line = spanJsonLine(span);
    const std::lock_guard<std::mutex> lock(mutex_);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
}

namespace
{

std::uint64_t
hexField(const telemetry::JsonValue &obj, const char *key)
{
    const telemetry::JsonValue *v = obj.find(key);
    if (!v || !v->isString())
        return 0;
    return std::strtoull(v->string.c_str(), nullptr, 16);
}

double
numField(const telemetry::JsonValue &obj, const char *key)
{
    const telemetry::JsonValue *v = obj.find(key);
    return v && v->isNumber() ? v->number : 0.0;
}

std::string
strField(const telemetry::JsonValue &obj, const char *key)
{
    const telemetry::JsonValue *v = obj.find(key);
    return v && v->isString() ? v->string : std::string();
}

/** Parse one NDJSON line to a Span; nullopt (with @p error set) on
 *  malformed JSON or a wrong schema tag. */
std::optional<Span>
parseSpanLine(std::string_view line, std::string *error)
{
    const std::optional<telemetry::JsonValue> doc =
        telemetry::parseJson(line, error);
    if (!doc)
        return std::nullopt;
    if (!doc->isObject()) {
        if (error)
            *error = "span line is not a JSON object";
        return std::nullopt;
    }
    const telemetry::JsonValue *schema = doc->find("schema");
    if (!schema || !schema->isString() ||
        schema->string != "aurora.spans.v1") {
        if (error)
            *error = "missing or unknown span schema tag";
        return std::nullopt;
    }
    Span span;
    span.trace_id = hexField(*doc, "trace");
    span.span_id = hexField(*doc, "span");
    span.parent_id = hexField(*doc, "parent");
    span.name = strField(*doc, "name");
    span.cat = strField(*doc, "cat");
    span.pid = static_cast<std::uint32_t>(numField(*doc, "pid"));
    span.tid = static_cast<std::uint32_t>(numField(*doc, "tid"));
    span.ts_us = numField(*doc, "ts_us");
    span.dur_us = numField(*doc, "dur_us");
    const telemetry::JsonValue *instant = doc->find("instant");
    span.instant = instant && instant->kind ==
                                  telemetry::JsonValue::Kind::Bool &&
                   instant->boolean;
    if (const telemetry::JsonValue *job = doc->find("job");
        job && job->isNumber()) {
        span.has_job = true;
        span.job = static_cast<std::uint64_t>(job->number);
    }
    span.attempt = static_cast<std::uint32_t>(numField(*doc, "attempt"));
    span.error = strField(*doc, "error");
    return span;
}

} // namespace

LoadedSpans
loadSpanFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        util::raiseError(util::SimErrorCode::BadTrace,
                         "cannot open span file '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    LoadedSpans loaded;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const bool torn_candidate = eol == std::string::npos;
        const std::string_view line(
            text.data() + pos,
            (torn_candidate ? text.size() : eol) - pos);
        const std::size_t line_start = pos;
        pos = torn_candidate ? text.size() : eol + 1;
        if (line.empty())
            continue;
        std::string error;
        std::optional<Span> span = parseSpanLine(line, &error);
        if (!span) {
            // The journal's crash contract: an interrupted final
            // append (no terminating newline) is dropped silently;
            // damage anywhere else is real corruption.
            if (torn_candidate) {
                loaded.dropped_tail = true;
                break;
            }
            util::raiseError(util::SimErrorCode::BadTrace, "'", path,
                             "': bad span line at byte ", line_start,
                             ": ", error);
        }
        loaded.spans.push_back(std::move(*span));
    }
    return loaded;
}

std::vector<Span>
spansFromTimeline(
    const harness::SweepTimeline &timeline, std::uint64_t trace_id,
    std::uint32_t pid, std::uint64_t epoch,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>
        *job_parents)
{
    std::vector<Span> out;
    for (const harness::TimelineSpan &t : timeline.spans()) {
        Span span;
        span.trace_id = trace_id;
        span.span_id =
            attemptSpanId(trace_id, t.job, t.attempt, epoch);
        span.parent_id = jobSpanId(trace_id, t.job);
        if (job_parents)
            for (const auto &[job, parent] : *job_parents)
                if (job == t.job) {
                    span.parent_id = parent;
                    break;
                }
        span.name = t.label;
        span.cat = "attempt";
        span.pid = pid;
        span.tid = t.worker;
        span.ts_us = t.start_ms * 1e3;
        span.dur_us = (t.end_ms - t.start_ms) * 1e3;
        span.instant = t.kind == harness::SpanKind::Resumed;
        span.has_job = true;
        span.job = t.job;
        span.attempt = t.attempt;
        span.error = t.error;
        out.push_back(std::move(span));
    }
    return out;
}

void
writeChromeTrace(std::ostream &os, const std::vector<Span> &spans,
                 const std::vector<ProcessName> &processes)
{
    std::vector<Span> sorted = spans;
    // Trace viewers (and aurora_obs_check) require each (pid, tid)
    // track's events in non-decreasing ts order; span id breaks the
    // remaining ties deterministically.
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Span &a, const Span &b) {
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         if (a.ts_us != b.ts_us)
                             return a.ts_us < b.ts_us;
                         return a.span_id < b.span_id;
                     });

    telemetry::TraceEventLog log;
    for (const ProcessName &proc : processes)
        log.nameProcess(proc.pid, proc.name);
    for (const Span &span : sorted) {
        std::vector<telemetry::TraceArg> args;
        args.push_back(telemetry::traceArg(
            "trace_id", std::string_view(hexId(span.trace_id))));
        args.push_back(telemetry::traceArg(
            "span_id", std::string_view(hexId(span.span_id))));
        args.push_back(telemetry::traceArg(
            "parent_id", std::string_view(hexId(span.parent_id))));
        if (span.has_job)
            args.push_back(telemetry::traceArg("job", span.job));
        if (span.attempt != 0)
            args.push_back(telemetry::traceArg(
                "attempt", static_cast<std::uint64_t>(span.attempt)));
        if (!span.error.empty())
            args.push_back(telemetry::traceArg(
                "error", std::string_view(span.error)));
        if (span.instant)
            log.instant(span.name, span.cat, span.pid, span.tid,
                        span.ts_us, std::move(args));
        else
            log.complete(span.name, span.cat, span.pid, span.tid,
                         span.ts_us, span.dur_us, std::move(args));
    }
    log.write(os);
}

} // namespace aurora::obs
