#include "metrics.hh"

#include <sstream>

#include "telemetry/json.hh"
#include "telemetry/registry.hh"
#include "util/stats.hh"

namespace aurora::obs
{

Gauge
gauge(std::string_view name, std::string_view description,
      double value)
{
    Gauge g;
    g.name = std::string(name);
    g.description = std::string(description);
    g.values.push_back(GaugeValue{std::string(), value});
    return g;
}

std::string
prometheusName(std::string_view name)
{
    std::string out = "aurora_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

namespace
{

/** Render a double the Prometheus way: integers without a point. */
std::string
promValue(double value)
{
    if (value == static_cast<double>(static_cast<long long>(value)))
        return std::to_string(static_cast<long long>(value));
    return telemetry::jsonNumber(value);
}

/** Prometheus label values escape backslash, quote, and newline. */
std::string
promLabelEscape(std::string_view text)
{
    std::string out;
    for (char c : text) {
        if (c == '\\' || c == '"')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
renderPrometheus(const telemetry::Registry &registry,
                 const std::vector<Gauge> &gauges)
{
    std::ostringstream os;
    for (const auto &entry : registry.counters()) {
        const std::string name = prometheusName(entry.name);
        os << "# HELP " << name << ' ' << entry.description << '\n';
        os << "# TYPE " << name << " counter\n";
        os << name << ' ' << entry.counter.value() << '\n';
    }
    for (const auto &entry : registry.histograms()) {
        const std::string name = prometheusName(entry.name);
        const Histogram &h = entry.histogram;
        os << "# HELP " << name << ' ' << entry.description << '\n';
        os << "# TYPE " << name << " summary\n";
        os << name << "{quantile=\"0.5\"} " << h.percentile(0.5)
           << '\n';
        os << name << "{quantile=\"0.9\"} " << h.percentile(0.9)
           << '\n';
        os << name << "{quantile=\"0.99\"} " << h.percentile(0.99)
           << '\n';
        os << name << "_sum " << h.sum() << '\n';
        os << name << "_count " << h.count() << '\n';
    }
    for (const Gauge &g : gauges) {
        const std::string name = prometheusName(g.name);
        os << "# HELP " << name << ' ' << g.description << '\n';
        os << "# TYPE " << name << " gauge\n";
        for (const GaugeValue &v : g.values) {
            os << name;
            if (!g.label_key.empty())
                os << '{' << g.label_key << "=\""
                   << promLabelEscape(v.label) << "\"}";
            os << ' ' << promValue(v.value) << '\n';
        }
    }
    return os.str();
}

std::string
renderMetricsJson(const telemetry::Registry &registry,
                  const std::vector<Gauge> &gauges)
{
    std::ostringstream os;
    telemetry::JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("aurora.metrics.v1");
    w.key("counters").beginArray();
    for (const auto &entry : registry.counters()) {
        w.beginObject();
        w.key("name").value(entry.name);
        w.key("value").value(
            static_cast<std::uint64_t>(entry.counter.value()));
        w.endObject();
    }
    w.endArray();
    w.key("histograms").beginArray();
    for (const auto &entry : registry.histograms()) {
        const Histogram &h = entry.histogram;
        w.beginObject();
        w.key("name").value(entry.name);
        w.key("count").value(static_cast<std::uint64_t>(h.count()));
        w.key("sum").value(h.sum());
        w.key("mean").value(h.mean());
        w.key("p50").value(h.percentile(0.5));
        w.key("p95").value(h.percentile(0.95));
        w.key("p99").value(h.percentile(0.99));
        w.key("max").value(h.maxSample());
        w.endObject();
    }
    w.endArray();
    w.key("gauges").beginArray();
    for (const Gauge &g : gauges)
        for (const GaugeValue &v : g.values) {
            w.beginObject();
            w.key("name").value(g.name);
            if (!g.label_key.empty()) {
                w.key(g.label_key).value(v.label);
            }
            w.key("value").value(v.value);
            w.endObject();
        }
    w.endArray();
    w.endObject();
    os << '\n';
    return os.str();
}

} // namespace aurora::obs
