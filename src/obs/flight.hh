/**
 * @file
 * Crash-durable flight recorder: the last-moments black box.
 *
 * Every fleet process (aurora_serve, the aurora_swarm coordinator,
 * each aurora_shardd worker) keeps a fixed-size ring of structured
 * NDJSON events — schema `aurora.flight.v1`, a process-monotonic
 * sequence number, and reason codes reusing the AURxxx catalog. Once
 * spoolTo() attaches a file, every event is also written through to
 * disk as it is recorded (one write() per line), so even a SIGKILL —
 * which no handler can observe — leaves the complete event history
 * on disk for the post-mortem reader.
 *
 * dump() is the signal-safe epilogue for the deaths that *can* be
 * observed (SIGTERM drain, fatal SimError, atexit): it appends a
 * single `flight.dump` marker line using only write() and a
 * sig_atomic_t reentrancy guard — no locks, no allocation, no stdio
 * — as required inside a signal handler.
 *
 * loadFlightFile() is the tolerant reader: a torn final line (the
 * crash happened mid-append) is dropped, exactly like the sweep
 * journal's tail contract.
 */

#ifndef AURORA_OBS_FLIGHT_HH
#define AURORA_OBS_FLIGHT_HH

#include <atomic>
#include <csignal>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace aurora::obs
{

/** One parsed `aurora.flight.v1` event. */
struct FlightEvent
{
    std::uint64_t seq = 0;
    /** Milliseconds since the recorder's construction. */
    std::uint64_t ms = 0;
    /** Stable event name ("lease.grant", "fence", "assign", ...). */
    std::string event;
    /** AURxxx catalog id when the event has one, else empty. */
    std::string code;
    std::string detail;
};

/** Fixed-capacity event ring with write-through spooling. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t capacity = 256);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Record one event: rendered once, stored in the ring (evicting
     * the oldest when full), and — when a spool file is attached —
     * written through with a single write() call. Thread-safe.
     */
    void note(std::string_view event, std::string_view code = {},
              std::string_view detail = {});

    /**
     * Attach the crash-durable spool file at @p path (truncating),
     * flush every buffered ring event to it, and write every later
     * note() through. Raises SimError(BadTrace) on open failure.
     */
    void spoolTo(const std::string &path);

    /**
     * Append a `flight.dump` marker naming @p reason to the spool
     * file. Async-signal-safe: write()-only, no locks, no
     * allocation; reentry (a signal landing inside dump) is dropped
     * by a sig_atomic_t guard. No-op when no spool file is attached.
     * The marker cannot claim a sequence number (that would need the
     * ring mutex), so it carries the seq of the *next* event — file
     * seqs are monotone non-decreasing, not unique, across a dump.
     */
    void dump(const char *reason) noexcept;

    /** Ring snapshot, oldest first. */
    std::vector<std::string> lines() const;

    /** Next sequence number (== events recorded so far). */
    std::uint64_t seq() const
    {
        return seq_.load(std::memory_order_relaxed);
    }

    /** Spool fd, -1 before spoolTo() (tests assert the write-through
     *  path). */
    int spoolFd() const
    {
        return fd_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return capacity_; }

  private:
    /** Milliseconds since construction via clock_gettime (usable from
     *  both the locked path and, being syscall-only, dump()). */
    std::uint64_t elapsedMs() const;

    const std::size_t capacity_;
    /** CLOCK_MONOTONIC at construction, in nanoseconds. */
    std::uint64_t epoch_ns_ = 0;
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<int> fd_{-1};
    /** Reentrancy guard for the signal-path dump(). */
    volatile std::sig_atomic_t dumping_ = 0;
    mutable std::mutex mutex_;
    /** Ring slot i holds the line of seq s where s % capacity == i. */
    std::vector<std::string> ring_;
};

/** loadFlightFile() result. */
struct LoadedFlight
{
    std::vector<FlightEvent> events;
    /** A torn trailing line was dropped (crash mid-append). */
    bool dropped_tail = false;
};

/**
 * Read an `aurora.flight.v1` file. Torn final line dropped; missing
 * file or mid-file corruption raises SimError(BadTrace) with the
 * byte offset.
 */
LoadedFlight loadFlightFile(const std::string &path);

} // namespace aurora::obs

#endif // AURORA_OBS_FLIGHT_HH
