/**
 * @file
 * Metrics exposition: Prometheus text + JSON renderings of a
 * telemetry Registry plus point-in-time gauges.
 *
 * The registry holds the monotonic half of the service's metrics
 * (admission verdicts, streamed results, latency histograms); gauges
 * are sampled by the caller at exposition time (queue depth,
 * per-tenant inflight, sessions). Both renderings are deterministic
 * in the registry's registration order and the gauge vector's order,
 * so two scrapes of an idle server are byte-identical — which is
 * what lets aurora_top render a stable fleet view and lets tests
 * diff scrapes directly.
 *
 * Metric names keep their dotted registry form in JSON and are
 * mangled to `aurora_<dots-to-underscores>` for Prometheus.
 * Histograms render as Prometheus summaries (p50/p90/p99 quantiles +
 * _sum/_count) — with unit-width millisecond buckets, the full
 * bucket vector would be hundreds of lines per scrape.
 */

#ifndef AURORA_OBS_METRICS_HH
#define AURORA_OBS_METRICS_HH

#include <string>
#include <string_view>
#include <vector>

namespace aurora::telemetry
{
class Registry;
}

namespace aurora::obs
{

/** One sample of a (possibly labeled) gauge. */
struct GaugeValue
{
    /** Label value (tenant name, ...); empty = unlabeled. */
    std::string label;
    double value = 0.0;
};

/** A point-in-time gauge sampled by the caller at exposition. */
struct Gauge
{
    /** Dotted stable name ("serve.queue_depth", ...). */
    std::string name;
    std::string description;
    /** Label key for the samples ("tenant"); empty = unlabeled. */
    std::string label_key;
    std::vector<GaugeValue> values;
};

/** Convenience: an unlabeled single-sample gauge. */
Gauge gauge(std::string_view name, std::string_view description,
            double value);

/** Prometheus metric name: "serve.queue_depth" → "aurora_serve_queue_depth". */
std::string prometheusName(std::string_view name);

/** Prometheus text-format exposition (text/plain; version=0.0.4). */
std::string renderPrometheus(const telemetry::Registry &registry,
                             const std::vector<Gauge> &gauges);

/** `aurora.metrics.v1` JSON exposition. */
std::string renderMetricsJson(const telemetry::Registry &registry,
                              const std::vector<Gauge> &gauges);

} // namespace aurora::obs

#endif // AURORA_OBS_METRICS_HH
