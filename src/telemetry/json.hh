/**
 * @file
 * Minimal JSON toolkit for the telemetry exporters.
 *
 * JsonWriter is a streaming writer with automatic comma/nesting
 * management — the exporters use it so every document they emit is
 * structurally valid by construction. Doubles are rendered with
 * enough digits to round-trip bit-exactly, which is what makes
 * --stats-json a faithful machine-readable RunResult.
 *
 * parseJson() is a small recursive-descent parser used by the schema
 * tests and the aurora_obs_check validator: it accepts exactly the
 * JSON the writers produce (objects, arrays, strings with the
 * standard escapes, finite numbers, booleans, null) — enough to
 * verify exported documents without an external dependency.
 */

#ifndef AURORA_TELEMETRY_JSON_HH
#define AURORA_TELEMETRY_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aurora::telemetry
{

/** @p text with JSON string escaping applied (no quotes added). */
std::string jsonEscape(std::string_view text);

/** Shortest decimal rendering of @p value that parses back bit-equal. */
std::string jsonNumber(double value);

/** Streaming JSON writer with automatic separators. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next value/begin* call is its value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s) { return value(std::string_view(s)); }
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(bool v);

    /**
     * Emit @p json verbatim as one value (caller guarantees it is a
     * valid JSON fragment — pre-rendered trace-event args use this).
     */
    JsonWriter &raw(std::string_view json);

  private:
    /** Emit the separator owed before the next value at this level. */
    void separate();

    std::ostream &os_;
    /** Per-nesting-level "a value has been written" flags. */
    std::vector<bool> hasValue_;
    bool afterKey_ = false;
};

/** Parsed JSON document node. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Key/value pairs in document order. */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup on an object; nullptr when absent or non-object. */
    const JsonValue *find(std::string_view k) const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed).
 * Returns nullopt on malformed input; @p error (when non-null)
 * receives a one-line description with the byte offset.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

} // namespace aurora::telemetry

#endif // AURORA_TELEMETRY_JSON_HH
