/**
 * @file
 * Chrome trace-event (chrome://tracing / Perfetto) export.
 *
 * TraceEventLog collects events in the Trace Event Format's JSON
 * array form — complete spans ('X'), instants ('i'), counter series
 * ('C') and metadata ('M') — and writes a {"traceEvents": [...]}
 * document that loads directly in ui.perfetto.dev or
 * chrome://tracing. Timestamps are microseconds; the simulator maps
 * one cycle to one microsecond, and the sweep timeline maps one
 * wall-clock millisecond to a thousand.
 *
 * TraceEventObserver is the per-cycle zoom level: attached to a
 * Processor (aurora_sim --trace-events out.json) it renders issue
 * slots, stalls, load spans, cache/MSHR/FP-queue activity and
 * occupancy counter tracks, bounded by a cycle cap exactly like
 * --pipeline-trace. Pure observer: it never perturbs results.
 */

#ifndef AURORA_TELEMETRY_TRACE_EVENT_HH
#define AURORA_TELEMETRY_TRACE_EVENT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline_trace.hh"
#include "util/types.hh"

namespace aurora::telemetry
{

/** One pre-rendered event argument (value is a JSON scalar). */
struct TraceArg
{
    std::string key;
    std::string json;
};

/** Build a string argument. */
TraceArg traceArg(std::string_view key, std::string_view value);
/** Build a numeric argument. */
TraceArg traceArg(std::string_view key, double value);
/** Build a numeric argument. */
TraceArg traceArg(std::string_view key, std::uint64_t value);

/** One trace event (see the Trace Event Format description). */
struct TraceEvent
{
    std::string name;
    std::string cat;
    char ph = 'X';
    double ts = 0.0;  ///< microseconds
    double dur = 0.0; ///< microseconds ('X' events only)
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::vector<TraceArg> args;
};

/** Ordered collection of trace events with a JSON writer. */
class TraceEventLog
{
  public:
    void add(TraceEvent event) { events_.push_back(std::move(event)); }

    /** Append a complete span ('X'). */
    void complete(std::string_view name, std::string_view cat,
                  std::uint32_t pid, std::uint32_t tid, double ts,
                  double dur, std::vector<TraceArg> args = {});

    /** Append a thread-scoped instant ('i'). */
    void instant(std::string_view name, std::string_view cat,
                 std::uint32_t pid, std::uint32_t tid, double ts,
                 std::vector<TraceArg> args = {});

    /** Append one sample of the counter track @p name ('C'). */
    void counter(std::string_view name, std::uint32_t pid,
                 std::uint32_t tid, double ts,
                 std::vector<TraceArg> series);

    /** Name process @p pid (metadata event). */
    void nameProcess(std::uint32_t pid, std::string_view name);
    /** Name thread @p tid of process @p pid (metadata event). */
    void nameThread(std::uint32_t pid, std::uint32_t tid,
                    std::string_view name);

    std::size_t size() const { return events_.size(); }
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Write the {"traceEvents": [...]} document. */
    void write(std::ostream &os) const;

  private:
    std::vector<TraceEvent> events_;
};

/**
 * Per-cycle pipeline exporter. Lane layout (thread tracks):
 * issue/stall spans on tid 0, retire instants on tid 1, memory
 * activity (loads, caches, MSHRs) on tid 2, FPU queues on tid 3,
 * occupancy counter tracks alongside. Emission stops after
 * @p max_cycles; the simulation (and its statistics) continue.
 */
class TraceEventObserver : public core::PipelineObserver
{
  public:
    TraceEventObserver(TraceEventLog &log, Cycle max_cycles,
                       std::uint32_t pid = 0);

    void onIssue(Cycle now, const trace::Inst &inst,
                 unsigned slot) override;
    void onStall(Cycle now, core::StallCause cause) override;
    void onRetire(Cycle now, unsigned count) override;
    void onCacheAccess(Cycle now, core::CacheUnit unit, unsigned hits,
                       unsigned misses) override;
    void onLoadIssue(Cycle now, Cycle latency, bool miss) override;
    void onMshr(Cycle now, unsigned allocated, unsigned released,
                unsigned in_use) override;
    void onFpQueue(Cycle now, core::FpQueueKind queue,
                   unsigned enqueued, unsigned dequeued,
                   unsigned depth) override;
    void onDrainStart(Cycle now) override;
    void onDrainEnd(Cycle now, unsigned mshr_releases) override;
    void onCycleEnd(Cycle now, const core::OccupancySample &occ) override;

  private:
    bool active(Cycle now) const { return now < maxCycles_; }

    TraceEventLog &log_;
    Cycle maxCycles_;
    std::uint32_t pid_;
};

} // namespace aurora::telemetry

#endif // AURORA_TELEMETRY_TRACE_EVENT_HH
