#include "sampler.hh"

#include <string>

#include "util/logging.hh"

namespace aurora::telemetry
{

std::string_view
stallSlug(core::StallCause cause)
{
    switch (cause) {
      case core::StallCause::ICache:  return "icache";
      case core::StallCause::Load:    return "load";
      case core::StallCause::LsuBusy: return "lsu_busy";
      case core::StallCause::RobFull: return "rob_full";
      case core::StallCause::FpQueue: return "fp_queue";
      default:
        AURORA_PANIC("unknown stall cause ",
                     static_cast<std::size_t>(cause));
    }
}

namespace
{

// Unit-width bucket counts for the up-front histogram registrations.
// Each count is one past the largest resource size any machine model
// configures, so typical samples land in exact buckets; anything
// larger lands in the overflow bucket and still counts toward n/sum.
constexpr std::size_t ROB_BUCKETS = 65;
constexpr std::size_t MSHR_BUCKETS = 33;
constexpr std::size_t WRITE_CACHE_BUCKETS = 17;
constexpr std::size_t PREFETCH_BUCKETS = 33;
constexpr std::size_t FP_QUEUE_BUCKETS = 33;
constexpr std::size_t FP_ROB_BUCKETS = 65;
constexpr std::size_t LATENCY_BUCKETS = 129;
constexpr std::size_t RETIRE_BURST_BUCKETS = 9;

constexpr std::array<std::string_view, 3> CACHE_SLUGS = {
    "icache", "dcache", "write_cache"};
constexpr std::array<std::string_view, 3> FP_QUEUE_SLUGS = {
    "fp_instq", "fp_loadq", "fp_storeq"};

} // namespace

RunSampler::RunSampler(Registry &registry) : registry_(registry)
{
    const auto c = [&](std::string_view name,
                       std::string_view description) {
        return &registry_.counter(name, description);
    };
    const auto h = [&](std::string_view name,
                       std::string_view description,
                       std::size_t buckets) {
        return &registry_.histogram(name, description, buckets);
    };

    cycles_ = c("sim.cycles", "cycles simulated (issue loop)");
    issued_ = c("issue.instructions", "instructions issued");
    for (std::size_t i = 0; i < core::NUM_STALL_CAUSES; ++i) {
        const auto cause = static_cast<core::StallCause>(i);
        stalls_[i] = c("stall." + std::string(stallSlug(cause)),
                       "cycles stalled on " +
                           std::string(core::stallCauseName(cause)));
    }
    retireEvents_ = c("retire.events", "cycles that retired >= 1 inst");
    retired_ = c("retire.instructions", "instructions retired");
    for (std::size_t i = 0; i < CACHE_SLUGS.size(); ++i) {
        const std::string slug(CACHE_SLUGS[i]);
        cacheHits_[i] = c(slug + ".hits", slug + " hits");
        cacheMisses_[i] = c(slug + ".misses", slug + " misses");
    }
    loads_ = c("lsu.loads", "integer + FP loads issued to the LSU");
    loadMisses_ = c("lsu.load_misses", "loads that missed the dcache");
    mshrAllocs_ = c("mshr.allocations", "MSHR entries allocated");
    mshrReleases_ = c("mshr.releases",
                      "MSHR entries released while issuing");
    mshrDrainReleases_ = c("mshr.drain_releases",
                           "MSHR entries released by the final drain");
    for (std::size_t i = 0; i < FP_QUEUE_SLUGS.size(); ++i) {
        const std::string slug(FP_QUEUE_SLUGS[i]);
        fpEnqueued_[i] = c(slug + ".enqueued", slug + " enqueues");
        fpDequeued_[i] = c(slug + ".dequeued", slug + " dequeues");
    }
    drains_ = c("sim.drains", "end-of-trace drain phases");

    retireBurst_ = h("retire.burst",
                     "instructions retired per retiring cycle",
                     RETIRE_BURST_BUCKETS);
    loadLatency_ = h("latency.load", "load-to-ready latency, cycles",
                     LATENCY_BUCKETS);
    loadMissLatency_ = h("latency.load_miss",
                         "dcache-miss load latency, cycles",
                         LATENCY_BUCKETS);
    occRob_ = h("occupancy.rob", "ROB entries in use per cycle",
                ROB_BUCKETS);
    occMshr_ = h("occupancy.mshr", "MSHRs in use per cycle",
                 MSHR_BUCKETS);
    occWriteCache_ = h("occupancy.write_cache",
                       "write-cache lines valid per cycle",
                       WRITE_CACHE_BUCKETS);
    occPrefetch_ = h("occupancy.prefetch",
                     "stream-buffer entries in flight per cycle",
                     PREFETCH_BUCKETS);
    occFpInstq_ = h("occupancy.fp_instq",
                    "FP instruction-queue depth per cycle",
                    FP_QUEUE_BUCKETS);
    occFpLoadq_ = h("occupancy.fp_loadq",
                    "FP load-queue depth per cycle", FP_QUEUE_BUCKETS);
    occFpStoreq_ = h("occupancy.fp_storeq",
                     "FP store-queue depth per cycle",
                     FP_QUEUE_BUCKETS);
    occFpRob_ = h("occupancy.fp_rob",
                  "FP reorder-buffer entries per cycle",
                  FP_ROB_BUCKETS);
}

void
RunSampler::onIssue(Cycle, const trace::Inst &, unsigned)
{
    issued_->add();
}

void
RunSampler::onStall(Cycle, core::StallCause cause)
{
    stalls_[static_cast<std::size_t>(cause)]->add();
}

void
RunSampler::onRetire(Cycle, unsigned count)
{
    retireEvents_->add();
    retired_->add(count);
    retireBurst_->add(count);
}

void
RunSampler::onCacheAccess(Cycle, core::CacheUnit unit, unsigned hits,
                          unsigned misses)
{
    const auto i = static_cast<std::size_t>(unit);
    cacheHits_[i]->add(hits);
    cacheMisses_[i]->add(misses);
}

void
RunSampler::onLoadIssue(Cycle, Cycle latency, bool miss)
{
    loads_->add();
    loadLatency_->add(latency);
    if (miss) {
        loadMisses_->add();
        loadMissLatency_->add(latency);
    }
}

void
RunSampler::onMshr(Cycle, unsigned allocated, unsigned released,
                   unsigned)
{
    mshrAllocs_->add(allocated);
    mshrReleases_->add(released);
}

void
RunSampler::onFpQueue(Cycle, core::FpQueueKind queue, unsigned enqueued,
                      unsigned dequeued, unsigned)
{
    const auto i = static_cast<std::size_t>(queue);
    fpEnqueued_[i]->add(enqueued);
    fpDequeued_[i]->add(dequeued);
}

void
RunSampler::onDrainStart(Cycle)
{
    drains_->add();
}

void
RunSampler::onDrainEnd(Cycle, unsigned mshr_releases)
{
    mshrDrainReleases_->add(mshr_releases);
}

void
RunSampler::onCycleEnd(Cycle, const core::OccupancySample &occ)
{
    cycles_->add();
    occRob_->add(occ.rob);
    occMshr_->add(occ.mshr);
    occWriteCache_->add(occ.write_cache);
    occPrefetch_->add(occ.prefetch);
    occFpInstq_->add(occ.fp_instq);
    occFpLoadq_->add(occ.fp_loadq);
    occFpStoreq_->add(occ.fp_storeq);
    occFpRob_->add(occ.fp_rob);
}

} // namespace aurora::telemetry
