#include "export.hh"

#include <ostream>
#include <sstream>

#include "core/stall.hh"
#include "json.hh"
#include "sampler.hh"

namespace aurora::telemetry
{

namespace
{

void
writeOccupancy(JsonWriter &w, const core::OccupancyStats &occ)
{
    w.beginObject();
    w.key("mean").value(occ.mean);
    w.key("p50").value(occ.p50);
    w.key("p95").value(occ.p95);
    w.key("max").value(occ.max);
    w.endObject();
}

void
writeMetrics(JsonWriter &w, const Registry &registry)
{
    w.beginObject();
    w.key("counters").beginArray();
    for (const auto &entry : registry.counters()) {
        w.beginObject();
        w.key("name").value(entry.name);
        w.key("description").value(entry.description);
        w.key("value").value(entry.counter.value());
        w.endObject();
    }
    w.endArray();
    w.key("histograms").beginArray();
    for (const auto &entry : registry.histograms()) {
        const Histogram &h = entry.histogram;
        w.beginObject();
        w.key("name").value(entry.name);
        w.key("description").value(entry.description);
        w.key("count").value(h.count());
        w.key("sum").value(h.sum());
        w.key("mean").value(h.mean());
        w.key("p50").value(h.percentile(0.50));
        w.key("p95").value(h.percentile(0.95));
        w.key("max").value(h.maxSample());
        w.key("overflow").value(h.overflow());
        w.key("buckets").beginArray();
        for (std::size_t i = 0; i < h.numBuckets(); ++i)
            w.value(h.bucket(i));
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

/** CSV field with RFC 4180 quoting when the text needs it. */
std::string
csvField(std::string_view text)
{
    if (text.find_first_of(",\"\n") == std::string_view::npos)
        return std::string(text);
    std::string out = "\"";
    for (const char c : text) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
appendOccupancyColumns(std::ostringstream &os,
                       const core::OccupancyStats &occ)
{
    os << ',' << jsonNumber(occ.mean) << ',' << occ.p50 << ','
       << occ.p95 << ',' << occ.max;
}

} // namespace

void
writeRunJson(JsonWriter &w, const core::RunResult &result,
             const Registry *registry)
{
    w.beginObject();
    w.key("model").value(result.model);
    w.key("benchmark").value(result.benchmark);
    w.key("instructions").value(result.instructions);
    w.key("cycles").value(std::uint64_t{result.cycles});
    w.key("cpi").value(result.cpi());
    w.key("issuing_cycles").value(std::uint64_t{result.issuing_cycles});
    w.key("tail_cycles").value(std::uint64_t{result.tail_cycles});
    w.key("issue_width_cycles").beginArray();
    for (const Cycle c : result.issue_width_cycles)
        w.value(std::uint64_t{c});
    w.endArray();
    w.key("stalls").beginObject();
    for (std::size_t c = 0; c < core::NUM_STALL_CAUSES; ++c)
        w.key(stallSlug(static_cast<core::StallCause>(c)))
            .value(result.stalls[c]);
    w.endObject();
    w.key("caches").beginObject();
    w.key("icache_hit_pct").value(result.icache_hit_pct);
    w.key("dcache_hit_pct").value(result.dcache_hit_pct);
    w.key("iprefetch_hit_pct").value(result.iprefetch_hit_pct);
    w.key("dprefetch_hit_pct").value(result.dprefetch_hit_pct);
    w.key("write_cache_hit_pct").value(result.write_cache_hit_pct);
    w.endObject();
    w.key("stores").value(result.stores);
    w.key("store_transactions").value(result.store_transactions);
    w.key("store_traffic_pct").value(result.storeTrafficPct());
    w.key("fp").beginObject();
    w.key("dispatched").value(result.fp_dispatched);
    w.key("issued").value(result.fpu.issued);
    w.key("dual_cycles").value(result.fpu.dual_cycles);
    w.key("blocked_operand").value(result.fpu.blocked_operand);
    w.key("blocked_unit").value(result.fpu.blocked_unit);
    w.key("blocked_rob").value(result.fpu.blocked_rob);
    w.key("blocked_bus").value(result.fpu.blocked_bus);
    w.key("loads").value(result.fpu.loads);
    w.key("stores").value(result.fpu.stores);
    w.endObject();
    w.key("rbe_cost").value(result.rbe_cost);
    w.key("occupancy").beginObject();
    w.key("rob");
    writeOccupancy(w, result.rob_occupancy);
    w.key("mshr");
    writeOccupancy(w, result.mshr_occupancy);
    w.key("fp_instq");
    writeOccupancy(w, result.fp_instq_occupancy);
    w.key("fp_loadq");
    writeOccupancy(w, result.fp_loadq_occupancy);
    w.key("fp_storeq");
    writeOccupancy(w, result.fp_storeq_occupancy);
    w.endObject();
    w.key("ledger").beginObject();
    w.key("trace_instructions").value(result.ledger.trace_instructions);
    w.key("retired").value(result.ledger.retired);
    w.key("icache_hits").value(result.ledger.icache_hits);
    w.key("icache_misses").value(result.ledger.icache_misses);
    w.key("icache_accesses").value(result.ledger.icache_accesses);
    w.key("dcache_hits").value(result.ledger.dcache_hits);
    w.key("dcache_misses").value(result.ledger.dcache_misses);
    w.key("dcache_accesses").value(result.ledger.dcache_accesses);
    w.key("mshr_allocations").value(result.ledger.mshr_allocations);
    w.key("mshr_releases").value(result.ledger.mshr_releases);
    w.key("mshr_outstanding").value(result.ledger.mshr_outstanding);
    w.endObject();
    if (registry) {
        w.key("metrics");
        writeMetrics(w, *registry);
    }
    w.endObject();
}

void
writeRunDocument(std::ostream &os, const core::RunResult &result,
                 const Registry *registry)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value(RUN_SCHEMA);
    w.key("run");
    writeRunJson(w, result, registry);
    w.endObject();
    os << '\n';
}

void
writeSuiteDocument(std::ostream &os,
                   const std::vector<SuiteEntry> &entries)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value(SUITE_SCHEMA);
    w.key("runs").beginArray();
    for (const SuiteEntry &entry : entries)
        writeRunJson(w, *entry.result, entry.registry);
    w.endArray();
    w.endObject();
    os << '\n';
}

std::string
statsCsvHeader()
{
    std::ostringstream os;
    os << "model,benchmark,instructions,cycles,cpi,issuing_cycles,"
          "tail_cycles";
    for (std::size_t c = 0; c < core::NUM_STALL_CAUSES; ++c)
        os << ",stall_" << stallSlug(static_cast<core::StallCause>(c));
    os << ",icache_hit_pct,dcache_hit_pct,iprefetch_hit_pct,"
          "dprefetch_hit_pct,write_cache_hit_pct,stores,"
          "store_transactions,store_traffic_pct,fp_dispatched";
    for (const std::string_view name : {"rob", "mshr"})
        os << ',' << name << "_mean," << name << "_p50," << name
           << "_p95," << name << "_max";
    return os.str();
}

std::string
statsCsvRow(const core::RunResult &result)
{
    std::ostringstream os;
    os << csvField(result.model) << ',' << csvField(result.benchmark)
       << ',' << result.instructions << ',' << result.cycles << ','
       << jsonNumber(result.cpi()) << ',' << result.issuing_cycles
       << ',' << result.tail_cycles;
    for (std::size_t c = 0; c < core::NUM_STALL_CAUSES; ++c)
        os << ',' << result.stalls[c];
    os << ',' << jsonNumber(result.icache_hit_pct) << ','
       << jsonNumber(result.dcache_hit_pct) << ','
       << jsonNumber(result.iprefetch_hit_pct) << ','
       << jsonNumber(result.dprefetch_hit_pct) << ','
       << jsonNumber(result.write_cache_hit_pct) << ','
       << result.stores << ',' << result.store_transactions << ','
       << jsonNumber(result.storeTrafficPct()) << ','
       << result.fp_dispatched;
    appendOccupancyColumns(os, result.rob_occupancy);
    appendOccupancyColumns(os, result.mshr_occupancy);
    return os.str();
}

} // namespace aurora::telemetry
