#include "trace_event.hh"

#include <ostream>

#include "json.hh"
#include "trace/op_class.hh"

namespace aurora::telemetry
{

namespace
{

/** Lane (thread track) ids for the per-cycle pipeline exporter. */
constexpr std::uint32_t LANE_ISSUE = 0;
constexpr std::uint32_t LANE_RETIRE = 1;
constexpr std::uint32_t LANE_MEMORY = 2;
constexpr std::uint32_t LANE_FPU = 3;

} // namespace

TraceArg
traceArg(std::string_view key, std::string_view value)
{
    return {std::string(key),
            "\"" + jsonEscape(value) + "\""};
}

TraceArg
traceArg(std::string_view key, double value)
{
    return {std::string(key), jsonNumber(value)};
}

TraceArg
traceArg(std::string_view key, std::uint64_t value)
{
    return {std::string(key), std::to_string(value)};
}

void
TraceEventLog::complete(std::string_view name, std::string_view cat,
                        std::uint32_t pid, std::uint32_t tid, double ts,
                        double dur, std::vector<TraceArg> args)
{
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ph = 'X';
    e.ts = ts;
    e.dur = dur;
    e.pid = pid;
    e.tid = tid;
    e.args = std::move(args);
    add(std::move(e));
}

void
TraceEventLog::instant(std::string_view name, std::string_view cat,
                       std::uint32_t pid, std::uint32_t tid, double ts,
                       std::vector<TraceArg> args)
{
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.ph = 'i';
    e.ts = ts;
    e.pid = pid;
    e.tid = tid;
    e.args = std::move(args);
    add(std::move(e));
}

void
TraceEventLog::counter(std::string_view name, std::uint32_t pid,
                       std::uint32_t tid, double ts,
                       std::vector<TraceArg> series)
{
    TraceEvent e;
    e.name = name;
    e.cat = "counter";
    e.ph = 'C';
    e.ts = ts;
    e.pid = pid;
    e.tid = tid;
    e.args = std::move(series);
    add(std::move(e));
}

void
TraceEventLog::nameProcess(std::uint32_t pid, std::string_view name)
{
    TraceEvent e;
    e.name = "process_name";
    e.ph = 'M';
    e.pid = pid;
    e.args.push_back(traceArg("name", name));
    add(std::move(e));
}

void
TraceEventLog::nameThread(std::uint32_t pid, std::uint32_t tid,
                          std::string_view name)
{
    TraceEvent e;
    e.name = "thread_name";
    e.ph = 'M';
    e.pid = pid;
    e.tid = tid;
    e.args.push_back(traceArg("name", name));
    add(std::move(e));
}

void
TraceEventLog::write(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();
    for (const TraceEvent &e : events_) {
        w.beginObject();
        w.key("name").value(e.name);
        if (!e.cat.empty())
            w.key("cat").value(e.cat);
        w.key("ph").value(std::string_view(&e.ph, 1));
        w.key("ts").value(e.ts);
        if (e.ph == 'X')
            w.key("dur").value(e.dur);
        w.key("pid").value(std::uint64_t{e.pid});
        w.key("tid").value(std::uint64_t{e.tid});
        if (e.ph == 'i')
            w.key("s").value("t");
        if (!e.args.empty()) {
            w.key("args").beginObject();
            for (const TraceArg &a : e.args)
                w.key(a.key).raw(a.json);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

TraceEventObserver::TraceEventObserver(TraceEventLog &log,
                                       Cycle max_cycles,
                                       std::uint32_t pid)
    : log_(log), maxCycles_(max_cycles), pid_(pid)
{
    log_.nameProcess(pid_, "aurora_sim pipeline");
    log_.nameThread(pid_, LANE_ISSUE, "issue");
    log_.nameThread(pid_, LANE_RETIRE, "retire");
    log_.nameThread(pid_, LANE_MEMORY, "memory");
    log_.nameThread(pid_, LANE_FPU, "fpu");
}

void
TraceEventObserver::onIssue(Cycle now, const trace::Inst &inst,
                            unsigned slot)
{
    if (!active(now))
        return;
    log_.complete(trace::opClassName(inst.op), "issue", pid_,
                  LANE_ISSUE, static_cast<double>(now), 1.0,
                  {traceArg("pc", std::uint64_t{inst.pc}),
                   traceArg("slot", std::uint64_t{slot})});
}

void
TraceEventObserver::onStall(Cycle now, core::StallCause cause)
{
    if (!active(now))
        return;
    log_.complete(core::stallCauseName(cause), "stall", pid_,
                  LANE_ISSUE, static_cast<double>(now), 1.0);
}

void
TraceEventObserver::onRetire(Cycle now, unsigned count)
{
    if (!active(now))
        return;
    log_.complete("retire", "retire", pid_, LANE_RETIRE,
                  static_cast<double>(now), 1.0,
                  {traceArg("count", std::uint64_t{count})});
}

void
TraceEventObserver::onCacheAccess(Cycle now, core::CacheUnit unit,
                                  unsigned hits, unsigned misses)
{
    if (!active(now))
        return;
    log_.instant(core::cacheUnitName(unit), "cache", pid_, LANE_MEMORY,
                 static_cast<double>(now),
                 {traceArg("hits", std::uint64_t{hits}),
                  traceArg("misses", std::uint64_t{misses})});
}

void
TraceEventObserver::onLoadIssue(Cycle now, Cycle latency, bool miss)
{
    if (!active(now))
        return;
    log_.complete(miss ? "load miss" : "load hit", "mem", pid_,
                  LANE_MEMORY, static_cast<double>(now),
                  static_cast<double>(latency),
                  {traceArg("latency", std::uint64_t{latency})});
}

void
TraceEventObserver::onMshr(Cycle now, unsigned allocated,
                           unsigned released, unsigned in_use)
{
    if (!active(now))
        return;
    log_.instant("mshr", "mem", pid_, LANE_MEMORY,
                 static_cast<double>(now),
                 {traceArg("allocated", std::uint64_t{allocated}),
                  traceArg("released", std::uint64_t{released}),
                  traceArg("in_use", std::uint64_t{in_use})});
}

void
TraceEventObserver::onFpQueue(Cycle now, core::FpQueueKind queue,
                              unsigned enqueued, unsigned dequeued,
                              unsigned depth)
{
    if (!active(now))
        return;
    log_.instant(core::fpQueueName(queue), "fpu", pid_, LANE_FPU,
                 static_cast<double>(now),
                 {traceArg("enqueued", std::uint64_t{enqueued}),
                  traceArg("dequeued", std::uint64_t{dequeued}),
                  traceArg("depth", std::uint64_t{depth})});
}

void
TraceEventObserver::onDrainStart(Cycle now)
{
    if (!active(now))
        return;
    log_.instant("drain begin", "drain", pid_, LANE_ISSUE,
                 static_cast<double>(now));
}

void
TraceEventObserver::onDrainEnd(Cycle now, unsigned mshr_releases)
{
    if (!active(now))
        return;
    log_.instant("drain end", "drain", pid_, LANE_ISSUE,
                 static_cast<double>(now),
                 {traceArg("mshr_releases",
                           std::uint64_t{mshr_releases})});
}

void
TraceEventObserver::onCycleEnd(Cycle now,
                               const core::OccupancySample &occ)
{
    if (!active(now))
        return;
    log_.counter("occupancy", pid_, LANE_ISSUE,
                 static_cast<double>(now),
                 {traceArg("rob", std::uint64_t{occ.rob}),
                  traceArg("mshr", std::uint64_t{occ.mshr}),
                  traceArg("write_cache", std::uint64_t{occ.write_cache}),
                  traceArg("prefetch", std::uint64_t{occ.prefetch})});
    log_.counter("fp queues", pid_, LANE_FPU,
                 static_cast<double>(now),
                 {traceArg("instq", std::uint64_t{occ.fp_instq}),
                  traceArg("loadq", std::uint64_t{occ.fp_loadq}),
                  traceArg("storeq", std::uint64_t{occ.fp_storeq}),
                  traceArg("fp_rob", std::uint64_t{occ.fp_rob})});
}

} // namespace aurora::telemetry
