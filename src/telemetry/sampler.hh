/**
 * @file
 * RunSampler: pipeline observer that records into a Registry.
 *
 * The sampler registers the full metric catalog up front (so exports
 * have a stable schema even for metrics that stay zero) and then
 * translates PipelineObserver events into counter increments and
 * histogram samples: per-cause stall cycles, cache hit/miss tallies,
 * MSHR allocation/release balance, FP queue flow, load latencies, and
 * per-cycle occupancy histograms for every bounded resource the paper
 * sizes (ROB, MSHRs, write cache, prefetch buffers, FP queues).
 *
 * Attaching a sampler never changes simulation results: it only reads
 * event payloads. docs/observability.md lists the catalog with the
 * paper figures each metric reproduces.
 */

#ifndef AURORA_TELEMETRY_SAMPLER_HH
#define AURORA_TELEMETRY_SAMPLER_HH

#include <array>

#include "core/pipeline_trace.hh"
#include "core/stall.hh"
#include "registry.hh"

namespace aurora::telemetry
{

/** Stable lower-case slug for metric/export names ("lsu_busy"). */
std::string_view stallSlug(core::StallCause cause);

/** Observer that records every pipeline event into a Registry. */
class RunSampler : public core::PipelineObserver
{
  public:
    /** Registers the metric catalog in @p registry (kept by ref). */
    explicit RunSampler(Registry &registry);

    Registry &registry() { return registry_; }

    void onIssue(Cycle now, const trace::Inst &inst,
                 unsigned slot) override;
    void onStall(Cycle now, core::StallCause cause) override;
    void onRetire(Cycle now, unsigned count) override;
    void onCacheAccess(Cycle now, core::CacheUnit unit, unsigned hits,
                       unsigned misses) override;
    void onLoadIssue(Cycle now, Cycle latency, bool miss) override;
    void onMshr(Cycle now, unsigned allocated, unsigned released,
                unsigned in_use) override;
    void onFpQueue(Cycle now, core::FpQueueKind queue,
                   unsigned enqueued, unsigned dequeued,
                   unsigned depth) override;
    void onDrainStart(Cycle now) override;
    void onDrainEnd(Cycle now, unsigned mshr_releases) override;
    void onCycleEnd(Cycle now,
                    const core::OccupancySample &occ) override;

  private:
    Registry &registry_;

    Counter *cycles_;
    Counter *issued_;
    std::array<Counter *, core::NUM_STALL_CAUSES> stalls_;
    Counter *retireEvents_;
    Counter *retired_;
    std::array<Counter *, 3> cacheHits_;   ///< indexed by CacheUnit
    std::array<Counter *, 3> cacheMisses_; ///< indexed by CacheUnit
    Counter *loads_;
    Counter *loadMisses_;
    Counter *mshrAllocs_;
    Counter *mshrReleases_;
    Counter *mshrDrainReleases_;
    std::array<Counter *, 3> fpEnqueued_;  ///< indexed by FpQueueKind
    std::array<Counter *, 3> fpDequeued_;  ///< indexed by FpQueueKind
    Counter *drains_;

    Histogram *retireBurst_;
    Histogram *loadLatency_;
    Histogram *loadMissLatency_;
    Histogram *occRob_;
    Histogram *occMshr_;
    Histogram *occWriteCache_;
    Histogram *occPrefetch_;
    Histogram *occFpInstq_;
    Histogram *occFpLoadq_;
    Histogram *occFpStoreq_;
    Histogram *occFpRob_;
};

} // namespace aurora::telemetry

#endif // AURORA_TELEMETRY_SAMPLER_HH
