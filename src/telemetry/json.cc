#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "util/logging.hh"

namespace aurora::telemetry
{

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    // JSON has no Inf/NaN; the exporters never produce them, but a
    // defensive null keeps the document parseable if one ever leaks.
    if (!std::isfinite(value))
        return "null";
    // Try increasing precision until the rendering round-trips: most
    // values (counts, small ratios) stay short, while 17 significant
    // digits always suffice for a bit-exact double.
    char buf[40];
    for (const int precision : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    return buf;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os_ << '{';
    hasValue_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    AURORA_ASSERT(!hasValue_.empty(), "endObject with no open scope");
    hasValue_.pop_back();
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os_ << '[';
    hasValue_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    AURORA_ASSERT(!hasValue_.empty(), "endArray with no open scope");
    hasValue_.pop_back();
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    separate();
    os_ << '"' << jsonEscape(k) << "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    separate();
    os_ << '"' << jsonEscape(s) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    os_ << jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::raw(std::string_view json)
{
    separate();
    os_ << json;
    return *this;
}

void
JsonWriter::separate()
{
    if (afterKey_) {
        // The key already emitted its ':'; this value follows it.
        afterKey_ = false;
        return;
    }
    if (!hasValue_.empty()) {
        if (hasValue_.back())
            os_ << ',';
        hasValue_.back() = true;
    }
}

const JsonValue *
JsonValue::find(std::string_view k) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : object)
        if (name == k)
            return &value;
    return nullptr;
}

namespace
{

/** Recursive-descent parser over a string_view with offset errors. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {}

    std::optional<JsonValue>
    parse()
    {
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing content after the document");
            return std::nullopt;
        }
        return v;
    }

  private:
    void
    fail(const std::string &what)
    {
        if (error_ && error_->empty())
            *error_ = what + " at byte " + std::to_string(pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"')) {
            fail("expected a string");
            return false;
        }
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return false;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad \\u escape digit");
                        return false;
                    }
                }
                // The writers only escape control characters; decode
                // BMP code points as UTF-8 for completeness.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        const auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0) {
            fail("expected a number");
            return false;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0) {
                fail("expected digits after the decimal point");
                return false;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0) {
                fail("expected exponent digits");
                return false;
            }
        }
        const std::string token(text_.substr(start, pos_ - start));
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(token.c_str(), nullptr);
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                std::string k;
                if (!parseString(k))
                    return false;
                if (!consume(':')) {
                    fail("expected ':' after an object key");
                    return false;
                }
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.object.emplace_back(std::move(k), std::move(v));
                if (consume(','))
                    { skipWs(); continue; }
                if (consume('}'))
                    return true;
                fail("expected ',' or '}' in an object");
                return false;
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.array.push_back(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                fail("expected ',' or ']' in an array");
                return false;
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        }
        if (literal("true")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (literal("false")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (literal("null")) {
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text, error).parse();
}

} // namespace aurora::telemetry
