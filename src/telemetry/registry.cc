#include "registry.hh"

#include "util/logging.hh"

namespace aurora::telemetry
{

Counter &
Registry::counter(std::string_view name, std::string_view description)
{
    for (CounterEntry &entry : counters_)
        if (entry.name == name)
            return entry.counter;
    counters_.push_back(
        {std::string(name), std::string(description), Counter{}});
    return counters_.back().counter;
}

Histogram &
Registry::histogram(std::string_view name, std::string_view description,
                    std::size_t num_buckets)
{
    for (HistogramEntry &entry : histograms_)
        if (entry.name == name) {
            AURORA_ASSERT(entry.histogram.numBuckets() == num_buckets,
                          "histogram '", entry.name,
                          "' re-registered with ", num_buckets,
                          " buckets (was ",
                          entry.histogram.numBuckets(), ")");
            return entry.histogram;
        }
    histograms_.emplace_back(std::string(name),
                             std::string(description), num_buckets);
    return histograms_.back().histogram;
}

const Counter *
Registry::findCounter(std::string_view name) const
{
    for (const CounterEntry &entry : counters_)
        if (entry.name == name)
            return &entry.counter;
    return nullptr;
}

const Histogram *
Registry::findHistogram(std::string_view name) const
{
    for (const HistogramEntry &entry : histograms_)
        if (entry.name == name)
            return &entry.histogram;
    return nullptr;
}

} // namespace aurora::telemetry
