/**
 * @file
 * Structured statistics exporters: --stats-json and --stats-csv.
 *
 * The JSON documents carry a "schema" discriminator so downstream
 * tooling can detect incompatible changes: "aurora.run.v1" wraps one
 * RunResult (optionally with the telemetry registry's metrics),
 * "aurora.suite.v1" wraps an ordered list of runs. The CSV exporter
 * emits one flat row per run with a fixed header — the spreadsheet
 * view of the same numbers. Field order is stable in both formats;
 * numbers round-trip bit-exactly (see json.hh).
 */

#ifndef AURORA_TELEMETRY_EXPORT_HH
#define AURORA_TELEMETRY_EXPORT_HH

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/processor.hh"
#include "registry.hh"

namespace aurora::telemetry
{

/** Schema tags written into the exported documents. */
inline constexpr std::string_view RUN_SCHEMA = "aurora.run.v1";
inline constexpr std::string_view SUITE_SCHEMA = "aurora.suite.v1";

class JsonWriter;

/**
 * Emit one run as a JSON object (no surrounding document) through
 * @p w. @p registry, when non-null, adds a "metrics" member with
 * every registered counter and histogram.
 */
void writeRunJson(JsonWriter &w, const core::RunResult &result,
                  const Registry *registry = nullptr);

/** Complete {"schema": "aurora.run.v1", "run": {...}} document. */
void writeRunDocument(std::ostream &os, const core::RunResult &result,
                      const Registry *registry = nullptr);

/** One run/registry pair for the suite document. */
struct SuiteEntry
{
    const core::RunResult *result = nullptr;
    const Registry *registry = nullptr; ///< optional
};

/** Complete {"schema": "aurora.suite.v1", "runs": [...]} document. */
void writeSuiteDocument(std::ostream &os,
                        const std::vector<SuiteEntry> &entries);

/** The fixed --stats-csv header row (no trailing newline). */
std::string statsCsvHeader();

/** One CSV row for @p result (no trailing newline). */
std::string statsCsvRow(const core::RunResult &result);

} // namespace aurora::telemetry

#endif // AURORA_TELEMETRY_EXPORT_HH
