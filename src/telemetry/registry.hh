/**
 * @file
 * Metrics registry: named counters and fixed-bucket histograms.
 *
 * A Registry is the collection point for one run's metrics, in the
 * spirit of gem5's stats framework: every metric is registered with a
 * stable name and a one-line description, registration order is
 * preserved (so exports have a stable field order), and looking a
 * name up twice returns the same metric. The registry itself is
 * deterministic — it never reads clocks or the environment — and a
 * run that records into one produces bit-identical RunResults to a
 * run that does not (observers only read machine state; see
 * docs/observability.md).
 *
 * Not thread-safe: one registry belongs to one run/owner. Sweeps use
 * one registry per job.
 */

#ifndef AURORA_TELEMETRY_REGISTRY_HH
#define AURORA_TELEMETRY_REGISTRY_HH

#include <deque>
#include <string>
#include <string_view>

#include "util/stats.hh"
#include "util/types.hh"

namespace aurora::telemetry
{

/** One named monotonic counter. */
class Counter
{
  public:
    void add(Count delta = 1) { value_ += delta; }
    Count value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    Count value_ = 0;
};

/** Ordered collection of named counters and histograms. */
class Registry
{
  public:
    struct CounterEntry
    {
        std::string name;
        std::string description;
        Counter counter;
    };

    struct HistogramEntry
    {
        HistogramEntry(std::string n, std::string d,
                       std::size_t num_buckets)
            : name(std::move(n)), description(std::move(d)),
              histogram(num_buckets)
        {}

        std::string name;
        std::string description;
        Histogram histogram;
    };

    /**
     * Find-or-create the counter @p name. The description is recorded
     * on first registration; later calls return the existing counter.
     */
    Counter &counter(std::string_view name,
                     std::string_view description);

    /**
     * Find-or-create the histogram @p name with @p num_buckets
     * unit-width buckets. Re-registering an existing name must agree
     * on the bucket count (panics otherwise — two metrics may not
     * share a name).
     */
    Histogram &histogram(std::string_view name,
                         std::string_view description,
                         std::size_t num_buckets);

    /** Registered counters, in registration order. */
    const std::deque<CounterEntry> &counters() const
    {
        return counters_;
    }
    /** Registered histograms, in registration order. */
    const std::deque<HistogramEntry> &histograms() const
    {
        return histograms_;
    }

    /** Lookup without creating; nullptr when absent. */
    const Counter *findCounter(std::string_view name) const;
    /** Lookup without creating; nullptr when absent. */
    const Histogram *findHistogram(std::string_view name) const;

  private:
    // Deques keep metric addresses stable across registrations, so a
    // sampler can hold references while later metrics are added.
    std::deque<CounterEntry> counters_;
    std::deque<HistogramEntry> histograms_;
};

} // namespace aurora::telemetry

#endif // AURORA_TELEMETRY_REGISTRY_HH
