#include "swarm.hh"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "core/audit.hh"
#include "core/config_io.hh"
#include "obs/ids.hh"
#include "obs/trace.hh"
#include "shardd.hh"
#include "util/logging.hh"
#include "util/sim_error.hh"

namespace aurora::shard
{

namespace
{

std::uint64_t
msSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/** Close every inherited descriptor above stderr in a fork()ed
 *  worker-to-be. The child must not hold the coordinator's listener
 *  or its siblings' connections: a dead sibling's EOF would otherwise
 *  go undetected for as long as any child keeps the fd alive. */
void
closeInheritedFds()
{
    for (int fd = 3; fd < 1024; ++fd)
        ::close(fd);
}

} // namespace

Swarm::Swarm(SwarmConfig config) : config_(std::move(config))
{
    if (config_.shards == 0)
        util::raiseError(util::SimErrorCode::BadConfig,
                         "swarm: shard count must be at least 1");
    if (config_.spawn == SpawnMode::Exec && config_.shardd_path.empty())
        util::raiseError(util::SimErrorCode::BadConfig,
                         "swarm: exec spawn mode needs the "
                         "aurora_shardd binary path");
    if (config_.beat_ms == 0)
        config_.beat_ms = std::max<std::uint64_t>(1, config_.lease_ms / 4);
    config_.fault_plans.resize(config_.shards);
    std::filesystem::create_directories(config_.journal_dir);
    if (!config_.flight_dir.empty()) {
        std::filesystem::create_directories(config_.flight_dir);
        flight_.spoolTo(config_.flight_dir + "/swarm.flight");
    }
    listener_ = util::listenUnix(config_.socket_path);
    slots_.resize(config_.shards);
}

Swarm::~Swarm()
{
    // Best-effort teardown for the error path; the normal path has
    // already drained via shutdownFleet().
    for (const long pid : children_)
        ::kill(static_cast<pid_t>(pid), SIGKILL);
    for (const long pid : children_)
        ::waitpid(static_cast<pid_t>(pid), nullptr, 0);
}

void
Swarm::spawnWorker(const std::optional<faultinject::ShardFaultPlan> &fault)
{
    ShardWorkerConfig worker;
    worker.socket_path = config_.socket_path;
    worker.journal_dir = config_.journal_dir;
    worker.fault = fault;
    worker.flight_dir = config_.flight_dir;

    const pid_t pid = ::fork();
    if (pid < 0)
        util::raiseError(util::SimErrorCode::Internal,
                         "swarm: fork() failed spawning a shard worker");
    if (pid == 0) {
        closeInheritedFds();
        if (config_.spawn == SpawnMode::Exec) {
            if (fault)
                ::setenv(SHARD_FAULT_ENV,
                         faultinject::formatShardFaultPlan(*fault)
                             .c_str(),
                         1);
            if (config_.flight_dir.empty())
                ::execl(config_.shardd_path.c_str(), "aurora_shardd",
                        "--socket", config_.socket_path.c_str(),
                        "--journal-dir", config_.journal_dir.c_str(),
                        static_cast<char *>(nullptr));
            else
                ::execl(config_.shardd_path.c_str(), "aurora_shardd",
                        "--socket", config_.socket_path.c_str(),
                        "--journal-dir", config_.journal_dir.c_str(),
                        "--flight-dir", config_.flight_dir.c_str(),
                        static_cast<char *>(nullptr));
            ::_exit(127); // exec failed; the parent sees the reap
        }
        ::_exit(runShardWorker(worker));
    }
    children_.push_back(pid);
    last_spawn_ = Clock::now();
    flight_.note("shard.spawn", {}, detail::concat("pid=", pid));
}

void
Swarm::grantLease(Loner &&dialer, std::uint64_t pid)
{
    std::uint32_t index = config_.shards;
    for (std::uint32_t i = 0; i < config_.shards; ++i)
        if (!slots_[i].fd.valid()) {
            index = i;
            break;
        }
    if (draining_ || index == config_.shards) {
        // A full fleet (or a draining one) needs no extra hands:
        // dismiss the surplus worker cleanly rather than leaving it
        // waiting forever.
        queueLonerFrame(dialer, wire::encode(wire::ShutdownMsg{}));
        dialer.fd.reset();
        return;
    }

    Slot &slot = slots_[index];
    slot.fd = std::move(dialer.fd);
    slot.decoder = std::move(dialer.decoder);
    slot.epoch = ++next_epoch_;
    slot.last_beat = slot.last_msg = Clock::now();
    slot.assigned.clear();
    slot.outbuf = std::move(dialer.outbuf);
    slot.outpos = dialer.outpos;
    slot.pid = static_cast<long>(pid);
    slot.version = dialer.version;
    slot.lease_start_us = obsNowUs();
    ++stats_.granted_leases;

    journal_refs_.push_back(
        {slot.epoch, index,
         shardJournalPath(config_.journal_dir, slot.epoch)});

    if (config_.verbose)
        inform(detail::concat("swarm: slot ", index, " leased epoch ",
                              slot.epoch, " to pid ", pid));
    flight_.note("lease.grant", {},
                 detail::concat("slot=", index, " epoch=", slot.epoch,
                                " pid=", pid, " v", slot.version));
    queueFrame(index,
               wire::encode(wire::WelcomeMsg{
                   slot.version, index, slot.epoch,
                   config_.lease_ms, config_.beat_ms}));
}

void
Swarm::migrateAssigned(Slot &slot)
{
    for (const std::uint64_t t : slot.assigned) {
        const auto it = tickets_.find(t);
        if (it != tickets_.end())
            obsDispatchEnd(it->second, /*committed=*/false, "migrated");
    }
    // Reverse push_front keeps submission order at the queue head, so
    // migrated work still completes (and journals) lowest-index first.
    for (auto it = slot.assigned.rbegin(); it != slot.assigned.rend();
         ++it)
        pending_.push_front(*it);
    stats_.migrated_jobs += slot.assigned.size();
    if (config_.verbose && !slot.assigned.empty())
        inform(detail::concat("swarm: migrated ", slot.assigned.size(),
                              " job(s) off fenced epoch ", slot.epoch));
    slot.assigned.clear();
}

void
Swarm::fenceSlot(std::uint32_t slot_index, const char *diagnostic,
                 bool keep_connection)
{
    Slot &slot = slots_[slot_index];
    if (slot.epoch == 0)
        return;
    fenced_epochs_.insert(slot.epoch);
    warn(detail::concat("swarm: ", diagnostic, ": fencing slot ",
                        slot_index, " epoch ", slot.epoch,
                        " (pid ", slot.pid, ")"));
    obsLeaseEnd(slot, "fence", diagnostic);
    migrateAssigned(slot);

    if (keep_connection && slot.fd.valid()) {
        // Keep the dead incarnation's connection open as a zombie
        // observer: its late Results must be *refused*, not merely
        // unread — AUR304 counts each refusal.
        Loner zombie;
        zombie.fd = std::move(slot.fd);
        zombie.decoder = std::move(slot.decoder);
        zombie.epoch = slot.epoch;
        zombie.outbuf = std::move(slot.outbuf);
        zombie.outpos = slot.outpos;
        zombie.opened = Clock::now();
        queueLonerFrame(zombie, wire::encode(wire::FencedMsg{
                                    zombie.epoch}));
        if (zombie.fd.valid())
            loners_.push_back(std::move(zombie));
    }
    slot.fd.reset();
    slot.decoder = wire::FrameDecoder{};
    slot.epoch = 0;
    slot.outbuf.clear();
    slot.outpos = 0;
    slot.pid = -1;
}

void
Swarm::assignPending()
{
    // Round-robin one ticket at a time so a refilled fleet shares the
    // backlog instead of the first slot swallowing it.
    bool progress = true;
    while (!pending_.empty() && progress) {
        progress = false;
        for (std::uint32_t i = 0;
             i < config_.shards && !pending_.empty(); ++i) {
            Slot &slot = slots_[i];
            if (!slot.fd.valid() ||
                slot.assigned.size() >= config_.chunk)
                continue;
            const std::uint64_t ticket = pending_.front();
            pending_.pop_front();
            slot.assigned.push_back(ticket);
            Ticket &state = tickets_.at(ticket);
            state.assigned_us = obsNowUs();
            state.assigned_epoch = slot.epoch;
            wire::AssignMsg assign;
            assign.epoch = slot.epoch;
            assign.jobs.push_back(state.spec);
            // The trace id rides only to v2 workers: a v1 decoder
            // treats any trailing bytes as a format mismatch.
            if (slot.version >= 2)
                assign.trace_id = trace_id_;
            queueFrame(i, wire::encode(assign));
            progress = true;
        }
    }
}

void
Swarm::queueFrame(std::uint32_t slot_index, const std::string &payload)
{
    Slot &slot = slots_[slot_index];
    if (!slot.fd.valid())
        return;
    if (!payload.empty()) // empty = flush-only (POLLOUT service)
        slot.outbuf.append(wire::frame(payload));
    // Opportunistic flush; leftovers wait for POLLOUT. Never a
    // blocking write: a wedged shard that stopped reading must not
    // wedge the coordinator with it.
    if (!util::writeSome(slot.fd.get(), slot.outbuf, slot.outpos)) {
        ++stats_.shard_exits;
        fenceSlot(slot_index, "AUR302: shard connection dropped",
                  /*keep_connection=*/false);
        return;
    }
    if (slot.outpos == slot.outbuf.size()) {
        slot.outbuf.clear();
        slot.outpos = 0;
    }
}

void
Swarm::queueLonerFrame(Loner &loner, const std::string &payload)
{
    if (!loner.fd.valid())
        return;
    if (!payload.empty()) // empty = flush-only (POLLOUT service)
        loner.outbuf.append(wire::frame(payload));
    if (!util::writeSome(loner.fd.get(), loner.outbuf, loner.outpos)) {
        loner.fd.reset();
        return;
    }
    if (loner.outpos == loner.outbuf.size()) {
        loner.outbuf.clear();
        loner.outpos = 0;
    }
}

void
Swarm::handleSlotMessage(std::uint32_t slot_index,
                         const std::string &payload)
{
    Slot &slot = slots_[slot_index];
    slot.last_msg = Clock::now();
    const wire::MsgType type = wire::peekType(payload);
    switch (type) {
      case wire::MsgType::Beat: {
        const wire::BeatMsg beat = wire::decodeBeat(payload);
        if (beat.slot != slot_index || beat.epoch != slot.epoch) {
            ++stats_.protocol_errors;
            fenceSlot(slot_index,
                      "AUR305: beat carries a foreign slot/epoch",
                      /*keep_connection=*/true);
            return;
        }
        slot.last_beat = Clock::now();
        return;
      }
      case wire::MsgType::Result: {
        wire::ResultMsg result = wire::decodeResult(payload);
        if (result.slot != slot_index || result.epoch != slot.epoch) {
            ++stats_.protocol_errors;
            fenceSlot(slot_index,
                      "AUR305: result carries a foreign slot/epoch",
                      /*keep_connection=*/true);
            return;
        }
        const auto it = tickets_.find(result.ticket);
        const auto assigned_at =
            std::find(slot.assigned.begin(), slot.assigned.end(),
                      result.ticket);
        if (it == tickets_.end() || it->second.committed ||
            assigned_at == slot.assigned.end()) {
            ++stats_.protocol_errors;
            fenceSlot(slot_index,
                      "AUR305: result for a ticket this incarnation "
                      "does not hold",
                      /*keep_connection=*/true);
            return;
        }
        Ticket &ticket = it->second;
        harness::JournalRecord record;
        try {
            record = harness::decodeJournalRecord(result.record);
        } catch (const util::SimError &) {
            ++stats_.protocol_errors;
            fenceSlot(slot_index,
                      "AUR305: result record bytes do not decode",
                      /*keep_connection=*/true);
            return;
        }
        if (record.job_index != ticket.spec.job_index) {
            ++stats_.protocol_errors;
            fenceSlot(slot_index,
                      "AUR305: result names the wrong grid index",
                      /*keep_connection=*/true);
            return;
        }
        // Commit point: exactly-once is decided here and only here.
        ticket.committed = true;
        ticket.commit = CommitRef{ticket.spec.job_index, slot_index,
                                  slot.epoch, result.ticket,
                                  std::move(result.record)};
        obsDispatchEnd(ticket, /*committed=*/true, nullptr);
        slot.assigned.erase(assigned_at);
        --open_tickets_;
        ++stats_.committed;
        if (commit_journal_)
            commit_journal_->append(record);
        return;
      }
      default:
        ++stats_.protocol_errors;
        fenceSlot(slot_index,
                  "AUR305: unexpected message from a leased shard",
                  /*keep_connection=*/true);
        return;
    }
}

bool
Swarm::handleLonerMessage(Loner &loner, const std::string &payload)
{
    const wire::MsgType type = wire::peekType(payload);
    if (loner.epoch == 0) {
        // Not yet welcomed: the only legal opening move is Hello.
        if (type != wire::MsgType::Hello)
            return false;
        const wire::HelloMsg hello = wire::decodeHello(payload);
        if (hello.version < wire::MIN_SHARD_PROTOCOL_VERSION ||
            hello.version > wire::SHARD_PROTOCOL_VERSION) {
            warn(detail::concat("swarm: AUR305: dialer speaks "
                                "protocol v", hello.version,
                                "; refusing"));
            ++stats_.protocol_errors;
            return false;
        }
        loner.version = hello.version;
        grantLease(std::move(loner), hello.pid);
        return false; // fd moved into the slot (or closed)
    }
    // Fenced zombie traffic. A late Result is the whole point of
    // keeping the connection: refuse it explicitly.
    if (type == wire::MsgType::Result) {
        const wire::ResultMsg result = wire::decodeResult(payload);
        ++stats_.fenced_results;
        warn(detail::concat("swarm: AUR304: refused result for ticket ",
                            result.ticket, " under fenced epoch ",
                            result.epoch));
        flight_.note("result.refused", "AUR304",
                     detail::concat("ticket=", result.ticket,
                                    " epoch=", result.epoch));
        queueLonerFrame(loner, wire::encode(wire::FencedMsg{
                                   loner.epoch}));
        return loner.fd.valid();
    }
    // Beats and anything else from behind the fence are noise.
    return true;
}

void
Swarm::pollOnce(int timeout_ms)
{
    struct Entry
    {
        enum Kind
        {
            Listener,
            SlotFd,
            LonerFd
        } kind;
        std::size_t index;
    };
    std::vector<struct pollfd> pfds;
    std::vector<Entry> entries;
    pfds.push_back({listener_.get(), POLLIN, 0});
    entries.push_back({Entry::Listener, 0});
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].fd.valid())
            continue;
        short events = POLLIN;
        if (slots_[i].outpos < slots_[i].outbuf.size())
            events |= POLLOUT;
        pfds.push_back({slots_[i].fd.get(), events, 0});
        entries.push_back({Entry::SlotFd, i});
    }
    const std::size_t loner_count = loners_.size();
    for (std::size_t i = 0; i < loner_count; ++i) {
        if (!loners_[i].fd.valid())
            continue;
        short events = POLLIN;
        if (loners_[i].outpos < loners_[i].outbuf.size())
            events |= POLLOUT;
        pfds.push_back({loners_[i].fd.get(), events, 0});
        entries.push_back({Entry::LonerFd, i});
    }

    if (::poll(pfds.data(), pfds.size(), timeout_ms) < 0)
        return; // EINTR: the main loop re-evaluates and re-polls

    bool accept_ready = false;
    for (std::size_t p = 0; p < pfds.size(); ++p) {
        if (pfds[p].revents == 0)
            continue;
        const Entry entry = entries[p];
        switch (entry.kind) {
          case Entry::Listener:
            accept_ready = true;
            break;
          case Entry::SlotFd: {
            const auto i = static_cast<std::uint32_t>(entry.index);
            Slot &slot = slots_[i];
            if (!slot.fd.valid())
                break; // fenced earlier this same cycle
            if ((pfds[p].revents & POLLOUT) != 0)
                queueFrame(i, std::string()); // flush-only
            if (!slot.fd.valid())
                break;
            if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) ==
                0)
                break;
            std::string chunk;
            const long n = util::readAvailable(slot.fd.get(), chunk);
            if (n > 0)
                slot.decoder.feed(chunk);
            std::string payload;
            for (;;) {
                if (!slot.fd.valid())
                    break;
                const util::FrameStatus status =
                    slot.decoder.next(payload);
                if (status == util::FrameStatus::NeedMore)
                    break;
                if (status == util::FrameStatus::Corrupt) {
                    ++stats_.protocol_errors;
                    fenceSlot(i, "AUR305: corrupt frame from shard",
                              /*keep_connection=*/false);
                    break;
                }
                try {
                    handleSlotMessage(i, payload);
                } catch (const util::SimError &e) {
                    ++stats_.protocol_errors;
                    warn(detail::concat("swarm: AUR305: ", e.what()));
                    fenceSlot(i, "AUR305: undecodable message",
                              /*keep_connection=*/false);
                }
            }
            if (n == 0 && slot.fd.valid()) {
                if (draining_) {
                    // Expected: the worker honoured Shutdown and hung
                    // up. Not a fence — its epoch stays clean.
                    obsLeaseEnd(slot, "drain", nullptr);
                    slot.fd.reset();
                    slot.epoch = 0;
                    slot.pid = -1;
                } else {
                    // EOF with a live lease: the shard process is
                    // gone (SIGKILL, crash, or clean exit without
                    // Shutdown).
                    ++stats_.shard_exits;
                    fenceSlot(i, "AUR302: shard connection closed",
                              /*keep_connection=*/false);
                }
            }
            break;
          }
          case Entry::LonerFd: {
            Loner &loner = loners_[entry.index];
            if (!loner.fd.valid())
                break;
            if ((pfds[p].revents & POLLOUT) != 0)
                queueLonerFrame(loner, std::string());
            if (!loner.fd.valid())
                break;
            if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) ==
                0)
                break;
            std::string chunk;
            const long n = util::readAvailable(loner.fd.get(), chunk);
            if (n > 0)
                loner.decoder.feed(chunk);
            std::string payload;
            bool keep = true;
            for (;;) {
                if (!loner.fd.valid())
                    break;
                const util::FrameStatus status =
                    loner.decoder.next(payload);
                if (status == util::FrameStatus::NeedMore)
                    break;
                if (status == util::FrameStatus::Corrupt) {
                    keep = false;
                    break;
                }
                try {
                    keep = handleLonerMessage(loner, payload);
                } catch (const util::SimError &) {
                    keep = false;
                }
                if (!keep)
                    break;
            }
            if (n == 0)
                keep = false;
            if (!keep)
                loner.fd.reset();
            break;
          }
        }
    }

    // Compact departed loners, then admit new dialers (push_back
    // last — indices captured above must stay stable).
    loners_.erase(std::remove_if(loners_.begin(), loners_.end(),
                                 [](const Loner &l) {
                                     return !l.fd.valid();
                                 }),
                  loners_.end());
    if (accept_ready) {
        for (;;) {
            util::Fd conn = util::acceptConn(listener_.get());
            if (!conn.valid())
                break;
            util::setNonBlocking(conn.get());
            Loner dialer;
            dialer.fd = std::move(conn);
            dialer.opened = Clock::now();
            loners_.push_back(std::move(dialer));
            last_live_ = Clock::now();
        }
    }
}

void
Swarm::checkLeases()
{
    for (std::uint32_t i = 0; i < config_.shards; ++i) {
        Slot &slot = slots_[i];
        if (!slot.fd.valid())
            continue;
        if (msSince(slot.last_beat) <= config_.lease_ms)
            continue;
        ++stats_.lease_expiries;
        // Recent non-beat traffic with no beats is the partition /
        // dropped-heartbeat signature; total silence is a wedge.
        const bool partitioned =
            msSince(slot.last_msg) <= config_.lease_ms;
        fenceSlot(i,
                  partitioned
                      ? "AUR303: heartbeats lost while results flowed"
                      : "AUR301: lease expired (no heartbeat)",
                  /*keep_connection=*/true);
    }
}

void
Swarm::reapChildren()
{
    for (auto it = children_.begin(); it != children_.end();) {
        int status = 0;
        const pid_t r =
            ::waitpid(static_cast<pid_t>(*it), &status, WNOHANG);
        if (r > 0)
            it = children_.erase(it);
        else
            ++it;
    }
}

void
Swarm::shutdownFleet()
{
    draining_ = true;
    for (std::uint32_t i = 0; i < config_.shards; ++i)
        if (slots_[i].fd.valid())
            queueFrame(i, wire::encode(wire::ShutdownMsg{}));
    // Give spawned workers a moment to exit on their own; then the
    // fence becomes literal. Wedged zombies (HangShard) only ever go
    // this way. The drain keeps *polling*: a ZombieAppend shard that
    // wakes during the grace window still gets its late Result
    // refused over the wire (AUR304) instead of dying unheard — the
    // refusal is part of the fencing contract, not best-effort.
    const Clock::time_point t0 = Clock::now();
    // External mode has no children to reap, but a fenced zombie's
    // kept-open connection (a Loner with a granted epoch) deserves
    // the same grace: keep polling until it exits or sends the late
    // Result we owe a refusal.
    const auto fencedLonerOpen = [this] {
        for (const Loner &loner : loners_)
            if (loner.fd.valid() && loner.epoch != 0)
                return true;
        return false;
    };
    while ((!children_.empty() || fencedLonerOpen()) &&
           msSince(t0) < 2000) {
        pollOnce(20);
        reapChildren();
    }
    // One last service pass: a zombie reaped just above sent its final
    // frame *before* exiting (send happens-before exit), so the bytes
    // are already in our socket buffer — the refusal must not be lost
    // to the poll/reap race.
    pollOnce(0);
    for (const long pid : children_)
        ::kill(static_cast<pid_t>(pid), SIGKILL);
    for (const long pid : children_)
        ::waitpid(static_cast<pid_t>(pid), nullptr, 0);
    children_.clear();
    for (Slot &slot : slots_) {
        obsLeaseEnd(slot, "shutdown", nullptr);
        slot.fd.reset();
        slot.epoch = 0;
        slot.assigned.clear();
        slot.outbuf.clear();
        slot.outpos = 0;
    }
    loners_.clear();
}

void
Swarm::obsSpan(std::uint64_t span_id, std::uint64_t parent_id,
               std::string name, std::string cat, double ts_us,
               double dur_us, bool instant, std::string error)
{
    if (span_log_ == nullptr || trace_id_ == 0)
        return;
    obs::Span span;
    span.trace_id = trace_id_;
    span.span_id = span_id;
    span.parent_id = parent_id;
    span.name = std::move(name);
    span.cat = std::move(cat);
    span.pid = 1; // coordinator track
    span.ts_us = ts_us;
    span.dur_us = dur_us;
    span.instant = instant;
    span.error = std::move(error);
    span_log_->add(std::move(span));
}

void
Swarm::obsLeaseEnd(const Slot &slot, const char *how,
                   const char *diagnostic)
{
    if (slot.epoch == 0)
        return;
    std::string code;
    if (diagnostic != nullptr &&
        std::strncmp(diagnostic, "AUR", 3) == 0 &&
        std::strlen(diagnostic) >= 6)
        code.assign(diagnostic, 6);
    flight_.note(detail::concat("lease.", how), code,
                 detail::concat("epoch=", slot.epoch,
                                " pid=", slot.pid));
    stats_.lease_ms_total += static_cast<std::uint64_t>(
        (obsNowUs() - slot.lease_start_us) / 1000.0);
    obsSpan(obs::leaseSpanId(trace_id_, slot.epoch),
            obs::stageSpanId(trace_id_, "swarm"),
            detail::concat("lease e", slot.epoch), "lease",
            slot.lease_start_us, obsNowUs() - slot.lease_start_us,
            /*instant=*/false,
            diagnostic != nullptr ? std::string(diagnostic)
                                  : std::string());
}

void
Swarm::obsDispatchEnd(Ticket &ticket, bool committed, const char *error)
{
    if (ticket.assigned_us <= 0.0)
        return;
    if (span_log_ != nullptr && trace_id_ != 0) {
        obs::Span span;
        span.trace_id = trace_id_;
        span.span_id = obs::dispatchSpanId(trace_id_, ticket.spec.ticket,
                                           ticket.assigned_epoch);
        span.parent_id =
            obs::leaseSpanId(trace_id_, ticket.assigned_epoch);
        span.name = detail::concat("dispatch t", ticket.spec.ticket);
        span.cat = "dispatch";
        span.pid = 1;
        span.ts_us = ticket.assigned_us;
        span.dur_us = obsNowUs() - ticket.assigned_us;
        span.job = ticket.spec.job_index;
        span.has_job = true;
        if (!committed)
            span.error = error != nullptr ? error : "abandoned";
        span_log_->add(std::move(span));
    }
    ticket.assigned_us = 0.0;
    ticket.assigned_epoch = 0;
}

std::vector<harness::SweepOutcome>
Swarm::runGrid(const std::vector<harness::SweepJob> &grid,
               const GridOptions &options)
{
    if (options.preflight)
        harness::preflightGrid(grid);
    draining_ = false;
    trace_id_ = options.trace_id;
    span_log_ = options.span_log;
    const double grid_start_us = obsNowUs();

    const std::size_t n = grid.size();
    std::vector<harness::SweepOutcome> outcomes(n);
    std::vector<char> replayed(n, 0);

    // Commit journal: the coordinator's own durable record, in the
    // standard harness journal format so `--resume` and every existing
    // journal tool read it unchanged.
    const std::uint64_t fingerprint =
        harness::gridFingerprint(grid, options.base_seed);
    std::unique_ptr<harness::JournalWriter> writer;
    if (!options.journal.empty()) {
        const bool resuming = options.resume && [&] {
            return std::ifstream(options.journal).good();
        }();
        if (resuming) {
            harness::LoadedJournal loaded =
                harness::loadJournal(options.journal);
            if (loaded.fingerprint != fingerprint || loaded.jobs != n)
                util::raiseError(
                    util::SimErrorCode::BadJournal, "journal '",
                    options.journal,
                    "' was written by a different grid — it cannot "
                    "replay results for this sweep");
            for (harness::JournalRecord &rec : loaded.records) {
                if (!rec.outcome.ok)
                    continue; // failed jobs get a fresh attempt
                const auto i = static_cast<std::size_t>(rec.job_index);
                outcomes[i] = std::move(rec.outcome);
                outcomes[i].resumed = true;
                replayed[i] = 1;
                ++stats_.resumed;
            }
            if (core::auditEnabled())
                for (std::size_t i = 0; i < n; ++i)
                    if (replayed[i])
                        core::auditRun(outcomes[i].result);
            if (loaded.dropped_tail)
                std::filesystem::resize_file(options.journal,
                                             loaded.valid_bytes);
            writer = std::make_unique<harness::JournalWriter>(
                options.journal);
        } else {
            writer = std::make_unique<harness::JournalWriter>(
                options.journal, fingerprint, n);
        }
    }
    commit_journal_ = writer.get();
    struct ClearGridState
    {
        Swarm *swarm;
        ~ClearGridState()
        {
            swarm->commit_journal_ = nullptr;
            swarm->trace_id_ = 0;
            swarm->span_log_ = nullptr;
        }
    } clear_grid_state{this};
    flight_.note("grid.start", {},
                 detail::concat("fingerprint=", fingerprint,
                                " jobs=", n));

    // Issue tickets in submission order for every job not replayed.
    const std::uint64_t first_ticket = next_ticket_ + 1;
    for (std::size_t i = 0; i < n; ++i) {
        if (replayed[i])
            continue;
        const harness::SweepJob &job = grid[i];
        wire::JobSpec spec;
        spec.ticket = ++next_ticket_;
        spec.job_index = i;
        spec.machine_spec = core::describe(job.machine);
        spec.profile_name = job.profile.name;
        spec.profile_seed = job.profile.seed;
        spec.instructions = job.instructions;
        spec.has_base_seed = options.base_seed.has_value();
        spec.base_seed = options.base_seed.value_or(0);
        spec.deadline_ms = options.deadline_ms;
        spec.retries = options.retries;
        spec.backoff_ms = options.backoff_ms;
        tickets_.emplace(spec.ticket, Ticket{spec, false, {}});
        pending_.push_back(spec.ticket);
    }
    open_tickets_ = pending_.size();

    // A fully-resumed grid needs no fleet at all.
    if (open_tickets_ > 0 && config_.spawn != SpawnMode::External)
        for (std::uint32_t i = 0; i < config_.shards; ++i)
            spawnWorker(config_.fault_plans[i]);
    last_live_ = Clock::now();

    while (open_tickets_ > 0) {
        assignPending();
        pollOnce(20);
        checkLeases();
        if (config_.spawn != SpawnMode::External)
            reapChildren();

        const bool any_live =
            std::any_of(slots_.begin(), slots_.end(),
                        [](const Slot &s) { return s.fd.valid(); });
        const bool any_dialer =
            std::any_of(loners_.begin(), loners_.end(),
                        [](const Loner &l) { return l.epoch == 0; });
        if (any_live || any_dialer)
            last_live_ = Clock::now();

        if (config_.spawn != SpawnMode::External) {
            const bool need = !any_live || !pending_.empty();
            if (need && !any_dialer &&
                stats_.respawns < config_.max_respawns &&
                msSince(last_spawn_) >= 250) {
                std::uint32_t vacant = 0;
                for (const Slot &slot : slots_)
                    if (!slot.fd.valid())
                        ++vacant;
                if (vacant > 0) {
                    ++stats_.respawns;
                    flight_.note("shard.respawn", {},
                                 detail::concat(stats_.respawns, "/",
                                                config_.max_respawns));
                    spawnWorker(std::nullopt);
                    if (config_.verbose)
                        inform(detail::concat(
                            "swarm: respawned a worker (",
                            stats_.respawns, "/",
                            config_.max_respawns, " used)"));
                }
            }
            if (!any_live && !any_dialer && children_.empty() &&
                stats_.respawns >= config_.max_respawns)
                util::raiseError(
                    util::SimErrorCode::Internal,
                    "swarm: shard fleet lost with ", open_tickets_,
                    " job(s) open and the respawn budget (",
                    config_.max_respawns, ") exhausted");
        } else if (!any_live && !any_dialer &&
                   msSince(last_live_) > config_.idle_timeout_ms) {
            util::raiseError(
                util::SimErrorCode::Internal,
                "swarm: no shard worker for ",
                config_.idle_timeout_ms, " ms with ", open_tickets_,
                " job(s) open — fleet lost");
        }
    }

    shutdownFleet();

    const double merge_start_us = obsNowUs();
    // The merge only sees journal files that exist: an incarnation
    // fenced before it even opened its journal left nothing behind,
    // which is fine exactly when nothing committed under its epoch.
    std::vector<ShardJournalRef> journals;
    journals.reserve(journal_refs_.size());
    std::vector<CommitRef> commits;
    commits.reserve(tickets_.size());
    for (std::uint64_t t = first_ticket; t <= next_ticket_; ++t) {
        const auto it = tickets_.find(t);
        if (it != tickets_.end() && it->second.committed)
            commits.push_back(it->second.commit);
    }
    for (const ShardJournalRef &ref : journal_refs_) {
        if (std::filesystem::exists(ref.path)) {
            journals.push_back(ref);
            continue;
        }
        const bool committed_under =
            std::any_of(commits.begin(), commits.end(),
                        [&](const CommitRef &c) {
                            return c.epoch == ref.epoch;
                        });
        if (committed_under)
            util::raiseError(
                util::SimErrorCode::BadJournal,
                "shard journal merge: AUR306: epoch ", ref.epoch,
                " committed results but its journal ", ref.path,
                " does not exist");
    }
    std::vector<harness::JournalRecord> merged =
        mergeShardJournals(journals, commits, fenced_epochs_);

    // Cross-check each record against the grid itself: the hash and
    // seed a serial SweepRunner would have journaled for this index.
    for (std::size_t k = 0; k < merged.size(); ++k) {
        harness::JournalRecord &rec = merged[k];
        const auto i = static_cast<std::size_t>(rec.job_index);
        const harness::SweepJob &job = grid[i];
        const std::uint64_t mh = harness::machineHash(job.machine);
        const std::uint64_t seed =
            options.base_seed
                ? harness::deriveJobSeed(*options.base_seed, mh,
                                         job.profile.name)
                : job.profile.seed;
        if (rec.machine_hash != mh || rec.seed != seed)
            util::raiseError(
                util::SimErrorCode::BadJournal,
                "shard journal merge: AUR306: job ", i,
                " ran with machine hash ", rec.machine_hash,
                " seed ", rec.seed, " but the grid demands hash ", mh,
                " seed ", seed);
        if (core::auditEnabled() && rec.outcome.ok)
            core::auditRun(rec.outcome.result);
        outcomes[i] = std::move(rec.outcome);
    }

    obsSpan(obs::stageSpanId(trace_id_, "merge"),
            obs::stageSpanId(trace_id_, "swarm"), "merge", "merge",
            merge_start_us, obsNowUs() - merge_start_us);
    flight_.note("merge", {},
                 detail::concat("records=", merged.size(), " journals=",
                                journals.size(), " fenced=",
                                fenced_epochs_.size()));

    // Fold each incarnation's crash-durable span file into the grid's
    // log: parentage is by derived ids, so this is pure concatenation.
    // A SIGKILLed shard's torn tail is dropped by loadSpanFile; a file
    // corrupted beyond that is reported, not fatal — spans are
    // diagnostics, never part of the result path.
    if (span_log_ != nullptr && trace_id_ != 0 &&
        !config_.flight_dir.empty()) {
        for (const ShardJournalRef &ref : journal_refs_) {
            const std::string spans_path =
                config_.flight_dir + "/shard-e" +
                std::to_string(ref.epoch) + ".spans";
            if (!std::filesystem::exists(spans_path))
                continue;
            try {
                // A reused fabric's flight dir accumulates span files
                // across grids; only this grid's trace folds in.
                std::vector<obs::Span> spans =
                    obs::loadSpanFile(spans_path).spans;
                spans.erase(std::remove_if(
                                spans.begin(), spans.end(),
                                [&](const obs::Span &s) {
                                    return s.trace_id != trace_id_;
                                }),
                            spans.end());
                span_log_->addAll(spans);
            } catch (const util::SimError &e) {
                warn(detail::concat("swarm: ignoring bad span file '",
                                    spans_path, "': ", e.what()));
            }
        }
    }
    // The fabric's own span: the grid-root span belongs to whoever
    // minted the trace (aurora_serve or the aurora_swarm CLI).
    obsSpan(obs::stageSpanId(trace_id_, "swarm"),
            obs::rootSpanId(trace_id_), "swarm", "swarm",
            grid_start_us, obsNowUs() - grid_start_us);
    flight_.note("grid.done", {},
                 detail::concat("committed=", stats_.committed,
                                " migrated=", stats_.migrated_jobs,
                                " refused=", stats_.fenced_results));

    if (config_.verbose)
        inform(detail::concat(
            "swarm: grid done: ", stats_.committed, " committed, ",
            stats_.resumed, " resumed, ", stats_.migrated_jobs,
            " migrated, ", stats_.fenced_results,
            " zombie result(s) refused, ", fenced_epochs_.size(),
            " epoch(s) fenced"));
    return outcomes;
}

} // namespace aurora::shard
