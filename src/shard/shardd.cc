#include "shardd.hh"

#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <deque>
#include <filesystem>
#include <memory>
#include <thread>
#include <utility>

#include "core/config_io.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "harness/sweep_trace.hh"
#include "obs/flight.hh"
#include "obs/ids.hh"
#include "obs/trace.hh"
#include "shard_journal.hh"
#include "shard_wire.hh"
#include "trace/spec_profiles.hh"
#include "util/logging.hh"
#include "util/sim_error.hh"
#include "util/socket.hh"

namespace aurora::shard
{

namespace
{

using Clock = std::chrono::steady_clock;
using faultinject::ShardFault;

std::uint64_t
msSince(Clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - t0)
            .count());
}

/** Rehydrate one wire JobSpec into the SweepJob the grid meant. */
harness::SweepJob
buildJob(const wire::JobSpec &spec)
{
    harness::SweepJob job;
    job.machine = core::parseMachineSpec(spec.machine_spec);
    job.profile = trace::profileByName(spec.profile_name);
    job.profile.seed = spec.profile_seed;
    job.instructions = spec.instructions;
    return job;
}

/**
 * Execute one assigned job, mirroring aurora_serve's executeJob()
 * shape exactly (workers=1, preflight off) so the journal record is
 * bit-identical to what a serial SweepRunner run of the same grid
 * would write for this index.
 */
harness::JournalRecord
runAssignedJob(const wire::JobSpec &spec,
               harness::SweepTimeline *timeline = nullptr)
{
    const harness::SweepJob job = buildJob(spec);
    const std::uint64_t mh = harness::machineHash(job.machine);

    harness::SweepOptions options;
    options.workers = 1;
    if (spec.has_base_seed)
        options.base_seed = spec.base_seed;
    options.retries = spec.retries;
    options.deadline_ms = spec.deadline_ms;
    options.backoff_ms = spec.backoff_ms;
    options.preflight = false; // the coordinator linted at admission
    // Observation only: the timeline records attempts, it never
    // steers them — the journal record stays bit-identical.
    options.timeline = timeline;
    options.timeline_job_base =
        static_cast<std::size_t>(spec.job_index);
    harness::SweepRunner runner(std::move(options));
    std::vector<harness::SweepOutcome> outcomes =
        runner.runOutcomes({job});

    harness::JournalRecord rec;
    rec.job_index = spec.job_index;
    rec.machine_hash = mh;
    rec.seed = spec.has_base_seed
                   ? harness::deriveJobSeed(spec.base_seed, mh,
                                            job.profile.name)
                   : job.profile.seed;
    rec.outcome = std::move(outcomes.front());
    return rec;
}

/** Sleep in interruptible 50 ms slices (keeps a wedged/zombie shard
 *  killable and bounds drill wall time). */
void
sleepMs(std::uint64_t ms)
{
    const Clock::time_point t0 = Clock::now();
    while (msSince(t0) < ms)
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<std::uint64_t>(50, ms - msSince(t0))));
}

} // namespace

std::string
shardJournalPath(const std::string &journal_dir, std::uint64_t epoch)
{
    return journal_dir + "/shard-e" + std::to_string(epoch) + ".ajrn";
}

int
runShardWorker(const ShardWorkerConfig &config)
{
    // Dial the coordinator, retrying while it comes up: external
    // drills start workers and coordinator in parallel.
    util::Fd fd;
    {
        const Clock::time_point t0 = Clock::now();
        for (;;) {
            try {
                fd = util::connectUnix(config.socket_path);
                break;
            } catch (const util::SimError &) {
                if (msSince(t0) >= config.connect_timeout_ms) {
                    warn(detail::concat("shard worker: no coordinator "
                                        "at ", config.socket_path,
                                        " after ",
                                        config.connect_timeout_ms,
                                        " ms"));
                    return SHARD_EXIT_ERROR;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
        }
    }

    wire::FrameDecoder decoder;
    wire::WelcomeMsg welcome;
    try {
        wire::sendFrame(fd.get(),
                        wire::encode(wire::HelloMsg{
                            wire::SHARD_PROTOCOL_VERSION,
                            static_cast<std::uint64_t>(::getpid())}));
        const std::optional<std::string> payload =
            util::recvFrame(fd.get(), decoder, 10'000);
        if (!payload)
            return SHARD_EXIT_ERROR;
        welcome = wire::decodeWelcome(*payload);
    } catch (const util::SimError &e) {
        warn(detail::concat("shard worker: handshake failed: ",
                            e.what()));
        return SHARD_EXIT_ERROR;
    }
    if (welcome.version < wire::MIN_SHARD_PROTOCOL_VERSION ||
        welcome.version > wire::SHARD_PROTOCOL_VERSION) {
        warn(detail::concat("shard worker: coordinator speaks "
                            "protocol v", welcome.version,
                            ", this worker v",
                            wire::SHARD_PROTOCOL_VERSION));
        return SHARD_EXIT_ERROR;
    }

    // Observability sinks, keyed by this incarnation's epoch. The
    // flight file is write-through (one write() per event), so a
    // SIGKILL mid-grid still leaves every prior event durable for the
    // coordinator-side postmortem reader.
    obs::FlightRecorder flight;
    std::unique_ptr<obs::SpanFileWriter> spans;
    if (!config.flight_dir.empty()) {
        try {
            std::filesystem::create_directories(config.flight_dir);
            const std::string stem = config.flight_dir + "/shard-e" +
                                     std::to_string(welcome.epoch);
            flight.spoolTo(stem + ".flight");
            spans = std::make_unique<obs::SpanFileWriter>(stem +
                                                          ".spans");
        } catch (const util::SimError &e) {
            warn(detail::concat("shard worker: cannot open flight "
                                "files: ", e.what()));
            return SHARD_EXIT_ERROR;
        }
    }
    flight.note("welcome", {},
                detail::concat("slot=", welcome.slot, " epoch=",
                               welcome.epoch, " v", welcome.version));

    // Local durability first: every completed job lands here before
    // its Result frame leaves the process.
    std::optional<ShardJournalWriter> journal;
    try {
        journal.emplace(shardJournalPath(config.journal_dir,
                                         welcome.epoch),
                        welcome.slot, welcome.epoch);
    } catch (const util::SimError &e) {
        warn(detail::concat("shard worker: cannot open journal: ",
                            e.what()));
        return SHARD_EXIT_ERROR;
    }

    std::deque<wire::JobSpec> queue;
    std::uint64_t done = 0;
    std::uint64_t trace_id = 0; // from Assign (v2 coordinators only)
    bool beats_enabled = true;
    bool fault_armed = config.fault.has_value();
    Clock::time_point last_beat = Clock::now();

    const auto sendBeat = [&] {
        wire::sendFrame(fd.get(),
                        wire::encode(wire::BeatMsg{welcome.slot,
                                                   welcome.epoch,
                                                   done}));
        last_beat = Clock::now();
    };

    /** Run the front job, persist locally, then offer upstream.
     *  Append-before-send is the durable-before-visible rule the
     *  merge's byte-equality cross-check verifies. */
    const auto runFrontJob = [&] {
        const wire::JobSpec spec = queue.front();
        queue.pop_front();
        harness::SweepTimeline timeline;
        timeline.setTrace(trace_id);
        const bool tracing = spans != nullptr && trace_id != 0;
        const harness::JournalRecord rec =
            runAssignedJob(spec, tracing ? &timeline : nullptr);
        const std::string bytes = harness::encodeJournalRecord(rec);
        journal->append({welcome.epoch, spec.ticket, bytes});
        if (tracing) {
            // Attempt spans parent to the coordinator's dispatch span
            // for this ticket — both sides derive the same id from
            // (trace, ticket, epoch), so no ids cross the wire.
            const std::vector<std::pair<std::uint64_t, std::uint64_t>>
                parents = {{spec.job_index,
                            obs::dispatchSpanId(trace_id, spec.ticket,
                                                welcome.epoch)}};
            for (const obs::Span &span : obs::spansFromTimeline(
                     timeline, trace_id,
                     static_cast<std::uint32_t>(100 + welcome.epoch),
                     welcome.epoch, &parents))
                spans->append(span);
        }
        wire::sendFrame(fd.get(),
                        wire::encode(wire::ResultMsg{
                            welcome.slot, welcome.epoch, spec.ticket,
                            bytes}));
        ++done;
        flight.note("job.done", {},
                    detail::concat("ticket=", spec.ticket, " job=",
                                   spec.job_index));
    };

    try {
        sendBeat();
        for (;;) {
            // Pull anything the kernel already holds for us into the
            // decoder: assignments race the handshake read, and the
            // idle poll below never runs while work is queued.
            {
                struct pollfd pfd = {fd.get(), POLLIN, 0};
                if (::poll(&pfd, 1, 0) > 0 &&
                    (pfd.revents & (POLLIN | POLLHUP | POLLERR)) !=
                        0) {
                    std::string chunk;
                    const long n =
                        util::readAvailable(fd.get(), chunk);
                    if (n > 0)
                        decoder.feed(chunk);
                    else if (n == 0)
                        return SHARD_EXIT_ERROR;
                }
            }

            // Drain every frame already buffered in the decoder
            // BEFORE the fault check and BEFORE sleeping in poll():
            // the handshake's recvFrame() may have pulled the first
            // Assign into the buffer along with Welcome, and poll()
            // cannot see buffered bytes.
            std::string payload;
            for (;;) {
                const util::FrameStatus status = decoder.next(payload);
                if (status == util::FrameStatus::NeedMore)
                    break;
                if (status == util::FrameStatus::Corrupt) {
                    warn("shard worker: corrupt frame from "
                         "coordinator");
                    return SHARD_EXIT_ERROR;
                }
                switch (wire::peekType(payload)) {
                  case wire::MsgType::Assign: {
                    wire::AssignMsg assign =
                        wire::decodeAssign(payload);
                    if (assign.epoch != welcome.epoch)
                        return SHARD_EXIT_ERROR;
                    if (assign.trace_id != 0)
                        trace_id = assign.trace_id;
                    for (wire::JobSpec &job : assign.jobs)
                        queue.push_back(std::move(job));
                    break;
                  }
                  case wire::MsgType::Fenced:
                    // The precise AUR30x reason lives in the
                    // coordinator's flight file; this side only knows
                    // its lease died.
                    flight.note("fenced", {},
                                detail::concat("epoch=",
                                               welcome.epoch));
                    return SHARD_EXIT_FENCED;
                  case wire::MsgType::Shutdown:
                    flight.note("shutdown", {},
                                detail::concat("done=", done));
                    return SHARD_EXIT_OK;
                  default:
                    warn(detail::concat(
                        "shard worker: unexpected ",
                        wire::msgTypeName(wire::peekType(payload)),
                        " message"));
                    return SHARD_EXIT_ERROR;
                }
            }

            // Scripted sabotage fires once, after `after_jobs`
            // completions (see faultinject::ShardFault).
            if (fault_armed && done >= config.fault->after_jobs) {
                fault_armed = false;
                flight.note("fault",
                            {},
                            faultinject::formatShardFaultPlan(
                                *config.fault));
                switch (config.fault->fault) {
                  case ShardFault::KillShard:
                    // The SIGKILL shape: no unwind, no flush beyond
                    // what append() already pushed to the OS. The
                    // flight note above is already durable — every
                    // note() is its own write().
                    ::_exit(SHARD_EXIT_KILLED);
                  case ShardFault::HangShard:
                    // Wedge: no beats, no reads, no work. Bounded so
                    // an external drill's orphan cannot linger.
                    sleepMs(welcome.lease_ms * 20);
                    return SHARD_EXIT_FENCED;
                  case ShardFault::DropHeartbeats:
                    // One-way partition: keep working, go silent.
                    beats_enabled = false;
                    break;
                  case ShardFault::ZombieAppend: {
                    // Go dark past the lease so the coordinator
                    // fences this epoch and migrates the queue...
                    sleepMs(welcome.lease_ms * 3);
                    // ...then wake up and push one more result under
                    // the stale epoch. The local append lands (in
                    // this epoch's own journal file — it can damage
                    // nothing live) and the Result must be refused.
                    if (!queue.empty())
                        runFrontJob();
                    return SHARD_EXIT_FENCED;
                  }
                }
            }

            if (beats_enabled && msSince(last_beat) >= welcome.beat_ms)
                sendBeat();

            if (!queue.empty()) {
                runFrontJob();
                continue; // re-drain and re-beat between jobs
            }

            // Idle: wait for traffic until the next beat is due.
            std::uint64_t wait_ms = 50;
            if (beats_enabled) {
                const std::uint64_t since = msSince(last_beat);
                wait_ms = since >= welcome.beat_ms
                              ? 0
                              : std::min<std::uint64_t>(
                                    50, welcome.beat_ms - since);
            }
            struct pollfd pfd = {fd.get(), POLLIN, 0};
            ::poll(&pfd, 1, static_cast<int>(wait_ms));
            if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
                std::string chunk;
                const long n = util::readAvailable(fd.get(), chunk);
                if (n > 0)
                    decoder.feed(chunk);
                else if (n == 0)
                    return SHARD_EXIT_ERROR; // coordinator vanished
            }
        }
    } catch (const util::SimError &e) {
        // A send to a coordinator that already fenced us (and closed
        // the connection) lands here; so do transport errors.
        warn(detail::concat("shard worker (slot ", welcome.slot,
                            ", epoch ", welcome.epoch, "): ",
                            e.what()));
        flight.note("error", {}, e.what());
        return SHARD_EXIT_ERROR;
    }
}

} // namespace aurora::shard
