#include "shard_journal.hh"

#include <map>
#include <utility>

#include "util/logging.hh"
#include "util/sim_error.hh"

namespace aurora::shard
{

namespace
{

using util::ByteReader;
using util::ByteWriter;

/** Record type tags (payload byte 0). */
constexpr std::uint8_t SHARD_REC_HEADER = 1;
constexpr std::uint8_t SHARD_REC_ENTRY = 2;

[[noreturn]] void
badJournal(const std::string &path, const std::string &what)
{
    util::raiseError(util::SimErrorCode::BadJournal, "shard journal ",
                     path, ": ", what);
}

} // namespace

LoadedShardJournal
loadShardJournal(const std::string &path)
{
    util::RecordFileReader reader(path);
    LoadedShardJournal loaded;

    std::string payload;
    switch (reader.next(payload)) {
      case util::RecordStatus::Ok:
        break;
      case util::RecordStatus::EndOfFile:
        badJournal(path, "empty file (no header record)");
      case util::RecordStatus::TruncatedTail:
        badJournal(path, "torn header record");
      case util::RecordStatus::Corrupt:
        badJournal(path, "corrupt header record");
    }
    {
        ByteReader rd(payload);
        if (rd.u8() != SHARD_REC_HEADER)
            badJournal(path, "first record is not a header");
        const std::uint32_t version = rd.u32();
        if (version != SHARD_JOURNAL_VERSION)
            badJournal(path, "format version " +
                                 std::to_string(version) +
                                 " (expected " +
                                 std::to_string(SHARD_JOURNAL_VERSION) +
                                 ")");
        loaded.slot = rd.u32();
        loaded.epoch = rd.u64();
        if (!rd.exhausted())
            badJournal(path, "trailing bytes in header record");
    }
    loaded.valid_bytes = reader.goodBytes();

    for (;;) {
        switch (reader.next(payload)) {
          case util::RecordStatus::EndOfFile:
            return loaded;
          case util::RecordStatus::TruncatedTail:
            // The signature of a shard killed mid-append. Its result
            // was never offered to the coordinator (append happens
            // first), so dropping the fragment loses nothing.
            warn(detail::concat("shard journal ", path,
                                ": dropping torn tail record (shard "
                                "was killed mid-append)"));
            loaded.dropped_tail = true;
            return loaded;
          case util::RecordStatus::Corrupt:
            badJournal(path, "corrupt record mid-file");
          case util::RecordStatus::Ok:
            break;
        }
        ByteReader rd(payload);
        if (rd.u8() != SHARD_REC_ENTRY)
            badJournal(path, "unexpected record tag");
        ShardJournalEntry entry;
        entry.epoch = rd.u64();
        entry.ticket = rd.u64();
        entry.record = rd.str();
        if (!rd.exhausted())
            badJournal(path, "trailing bytes in entry record");
        loaded.entries.push_back(std::move(entry));
        loaded.valid_bytes = reader.goodBytes();
    }
}

ShardJournalWriter::ShardJournalWriter(const std::string &path,
                                       std::uint32_t slot,
                                       std::uint64_t epoch)
    : writer_(path, /*truncate=*/true)
{
    ByteWriter w;
    w.u8(SHARD_REC_HEADER);
    w.u32(SHARD_JOURNAL_VERSION);
    w.u32(slot);
    w.u64(epoch);
    writer_.append(w.bytes());
}

void
ShardJournalWriter::append(const ShardJournalEntry &entry)
{
    ByteWriter w;
    w.u8(SHARD_REC_ENTRY);
    w.u64(entry.epoch);
    w.u64(entry.ticket);
    w.str(entry.record);
    writer_.append(w.bytes());
}

std::vector<harness::JournalRecord>
mergeShardJournals(const std::vector<ShardJournalRef> &journals,
                   const std::vector<CommitRef> &commits,
                   const std::set<std::uint64_t> &fenced_epochs)
{
    // Index every surviving entry of every incarnation's journal by
    // (epoch, ticket) — the pair is unique because an epoch is
    // granted once and a ticket is assigned to one shard at a time
    // per epoch.
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             const ShardJournalEntry *>
        by_key;
    std::map<std::uint64_t, std::uint32_t> slot_of_epoch;
    std::vector<LoadedShardJournal> loaded;
    loaded.reserve(journals.size());
    for (const ShardJournalRef &ref : journals) {
        loaded.push_back(loadShardJournal(ref.path));
        const LoadedShardJournal &j = loaded.back();
        if (j.slot != ref.slot || j.epoch != ref.epoch)
            badJournal(ref.path,
                       "AUR306: header names slot " +
                           std::to_string(j.slot) + " epoch " +
                           std::to_string(j.epoch) +
                           " but the coordinator granted slot " +
                           std::to_string(ref.slot) + " epoch " +
                           std::to_string(ref.epoch));
        if (!slot_of_epoch.emplace(ref.epoch, ref.slot).second)
            badJournal(ref.path, "AUR306: epoch " +
                                     std::to_string(ref.epoch) +
                                     " granted twice");
        for (const ShardJournalEntry &entry : j.entries) {
            if (entry.epoch != j.epoch)
                badJournal(ref.path,
                           "AUR306: entry stamped epoch " +
                               std::to_string(entry.epoch) +
                               " inside the epoch-" +
                               std::to_string(j.epoch) + " journal");
            if (!by_key.emplace(std::make_pair(entry.epoch,
                                               entry.ticket),
                                &entry)
                     .second)
                badJournal(ref.path,
                           "AUR306: duplicate entry for epoch " +
                               std::to_string(entry.epoch) +
                               " ticket " +
                               std::to_string(entry.ticket));
        }
    }

    // Invariant 1: every commit is present in its shard's journal
    // under the committing epoch, byte-identical to what the
    // coordinator accepted off the wire.
    std::vector<harness::JournalRecord> merged;
    merged.reserve(commits.size());
    for (const CommitRef &commit : commits) {
        const auto granted = slot_of_epoch.find(commit.epoch);
        if (granted == slot_of_epoch.end() ||
            granted->second != commit.slot)
            util::raiseError(util::SimErrorCode::BadJournal,
                             "shard journal merge: AUR306: job ",
                             commit.job_index,
                             " committed under epoch ", commit.epoch,
                             " slot ", commit.slot,
                             " but no such lease was granted");
        const auto it =
            by_key.find(std::make_pair(commit.epoch, commit.ticket));
        if (it == by_key.end())
            util::raiseError(util::SimErrorCode::BadJournal,
                             "shard journal merge: AUR306: committed "
                             "record for job ", commit.job_index,
                             " (ticket ", commit.ticket, ", epoch ",
                             commit.epoch,
                             ") is missing from its shard journal — "
                             "durable-before-visible was violated");
        if (it->second->record != commit.record)
            util::raiseError(util::SimErrorCode::BadJournal,
                             "shard journal merge: AUR306: journaled "
                             "bytes for job ", commit.job_index,
                             " disagree with the committed record");
        harness::JournalRecord record =
            harness::decodeJournalRecord(commit.record);
        if (record.job_index != commit.job_index)
            util::raiseError(util::SimErrorCode::BadJournal,
                             "shard journal merge: AUR306: committed "
                             "record for job ", commit.job_index,
                             " carries grid index ", record.job_index);
        merged.push_back(std::move(record));
        by_key.erase(it);
    }

    // Invariant 2: whatever remains was never committed, so it must
    // be the work of a fenced incarnation — a zombie writing behind
    // the fence, or a shard that died between append and send. A
    // leftover under a *live* epoch means a result was offered and
    // lost, or a shard ran work it was never assigned.
    for (const auto &[key, entry] : by_key) {
        if (fenced_epochs.count(key.first) == 0)
            util::raiseError(util::SimErrorCode::BadJournal,
                             "shard journal merge: AUR306: "
                             "uncommitted entry for ticket ",
                             entry->ticket, " under live epoch ",
                             entry->epoch);
    }

    return merged;
}

} // namespace aurora::shard
