/**
 * @file
 * Per-shard local journal and the coordinator's deterministic merge.
 *
 * Every shard persists each completed job locally *before* offering
 * the result to the coordinator — the same durable-before-visible
 * rule aurora_serve follows — using the journal's CRC record framing
 * (util/record_io) with one extra field per record: the **lease
 * epoch** the shard held when it ran the job.
 *
 * File layout:
 *
 *   record 0: header — shard journal version, slot index, epoch
 *   record k: entry  — epoch, coordinator ticket,
 *                      harness::encodeJournalRecord() bytes
 *
 * One journal file belongs to one *incarnation* (one granted epoch),
 * never to a slot: a fenced zombie and the replacement shard respawned
 * into its slot are both live processes with the file-append syscalls
 * to prove it, and sharing a path would let their appends interleave.
 * Per-epoch files make the fence physical — the zombie can only ever
 * damage a file whose epoch is already dead.
 *
 * The epoch is what makes the merge auditable. A shard that lost its
 * lease (fenced) may keep appending — it cannot know it is dead — but
 * every byte it writes is stamped with an epoch the coordinator has
 * already fenced. At merge time mergeShardJournals() proves, for a
 * finished grid:
 *
 *   1. every committed job's record is present in its shard's journal
 *      under the committing epoch, byte-identical to what the
 *      coordinator accepted (durable-before-visible held), and
 *   2. every *other* entry carries a fenced epoch (no shard smuggled
 *      an uncommitted result past the fence).
 *
 * Any violation raises SimError(BadJournal) naming catalog ID AUR306
 * — the merge refuses to fabricate or double-count results.
 *
 * Corruption policy matches the sweep journal: a torn tail (shard
 * killed mid-append) is dropped with a warning — by construction its
 * result was never offered, so nothing is lost — while mid-file
 * damage raises BadJournal.
 */

#ifndef AURORA_SHARD_SHARD_JOURNAL_HH
#define AURORA_SHARD_SHARD_JOURNAL_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "harness/journal.hh"

namespace aurora::shard
{

/** Shard journal format version (header record). */
inline constexpr std::uint32_t SHARD_JOURNAL_VERSION = 1;

/** One epoch-stamped completion in a shard's local journal. */
struct ShardJournalEntry
{
    /** Lease epoch the shard held when it ran the job. */
    std::uint64_t epoch = 0;
    /** Coordinator-issued ticket the entry answers. */
    std::uint64_t ticket = 0;
    /** harness::encodeJournalRecord() bytes of the outcome. */
    std::string record;
};

/** Everything loadShardJournal() recovered from disk. */
struct LoadedShardJournal
{
    std::uint32_t slot = 0;
    /** Lease epoch of the incarnation that owned the file. */
    std::uint64_t epoch = 0;
    std::vector<ShardJournalEntry> entries;
    /** A torn tail record was dropped (shard died mid-append). */
    bool dropped_tail = false;
    /** File length through the last good record (truncate-to-here
     *  before reopening for append). */
    std::uint64_t valid_bytes = 0;
};

/**
 * Parse a shard journal. Throws util::SimError (BadJournal) on a
 * missing/unreadable file, bad header, version mismatch, or mid-file
 * corruption; a torn tail is dropped with a warning.
 */
LoadedShardJournal loadShardJournal(const std::string &path);

/**
 * Append-side of a shard journal. Single-threaded (one shard process
 * owns one file); every entry is flushed before append() returns, so
 * a SIGKILL tears at most the entry being written.
 */
class ShardJournalWriter
{
  public:
    /** Start a fresh journal (truncates; writes the header). */
    ShardJournalWriter(const std::string &path, std::uint32_t slot,
                       std::uint64_t epoch);

    void append(const ShardJournalEntry &entry);

    const std::string &path() const { return writer_.path(); }

  private:
    util::RecordFileWriter writer_;
};

/** One incarnation's journal file, as the coordinator tracked it. */
struct ShardJournalRef
{
    /** Epoch granted to the incarnation (unique across the run). */
    std::uint64_t epoch = 0;
    /** Slot the incarnation served. */
    std::uint32_t slot = 0;
    std::string path;
};

/** Where (and under which lease) one grid job committed. */
struct CommitRef
{
    /** Submission-order index in the original grid (a resumed run
     *  deals only the jobs its journal was missing, so commits need
     *  not cover a contiguous prefix). */
    std::uint64_t job_index = 0;
    /** Shard slot whose journal must hold the record. */
    std::uint32_t slot = 0;
    /** Epoch the committing shard held (current at commit time). */
    std::uint64_t epoch = 0;
    /** Ticket the coordinator issued for this job. */
    std::uint64_t ticket = 0;
    /** The committed record bytes, as accepted off the wire. */
    std::string record;
};

/**
 * Deterministic merge of per-shard journals into the grid's
 * submission-order result records, cross-checked against the
 * coordinator's commit map (see file comment for the two invariants).
 * @p journals lists every incarnation's journal file (one per granted
 * epoch); @p commits is in submission order (job_index ascending, not
 * necessarily contiguous — a resume deals only the missing jobs);
 * @p fenced_epochs holds every epoch the coordinator revoked. Returns
 * the decoded records in submission order. Throws util::SimError
 * (BadJournal, catalog AUR306) on any violation.
 */
std::vector<harness::JournalRecord>
mergeShardJournals(const std::vector<ShardJournalRef> &journals,
                   const std::vector<CommitRef> &commits,
                   const std::set<std::uint64_t> &fenced_epochs);

} // namespace aurora::shard

#endif // AURORA_SHARD_SHARD_JOURNAL_HH
