#include "shard_wire.hh"

#include "util/logging.hh"
#include "util/record_io.hh"
#include "util/sim_error.hh"

namespace aurora::shard::wire
{

namespace
{

using util::ByteReader;
using util::ByteWriter;

/** Begin a payload and emit the type byte. */
ByteWriter
begin(MsgType type)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(type));
    return w;
}

/** Open a payload for decoding: check the type byte. */
ByteReader
open(const std::string &payload, MsgType want)
{
    ByteReader rd(payload);
    const std::uint8_t got = rd.u8();
    if (got != static_cast<std::uint8_t>(want))
        util::raiseError(util::SimErrorCode::BadWire, "expected a ",
                         msgTypeName(want),
                         " shard message, got type byte ",
                         static_cast<unsigned>(got));
    return rd;
}

/** Close a decode: the payload must be fully consumed. */
void
close(const ByteReader &rd, MsgType type)
{
    if (!rd.exhausted())
        util::raiseError(util::SimErrorCode::BadWire,
                         "trailing bytes after a ", msgTypeName(type),
                         " shard message (format mismatch)");
}

} // namespace

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::Hello: return "Hello";
      case MsgType::Beat: return "Beat";
      case MsgType::Result: return "Result";
      case MsgType::Welcome: return "Welcome";
      case MsgType::Assign: return "Assign";
      case MsgType::Fenced: return "Fenced";
      case MsgType::Shutdown: return "Shutdown";
    }
    return "?";
}

MsgType
peekType(const std::string &payload)
{
    if (payload.empty())
        util::raiseError(util::SimErrorCode::BadWire,
                         "empty shard wire payload");
    const auto raw = static_cast<std::uint8_t>(payload[0]);
    const auto type = static_cast<MsgType>(raw);
    switch (type) {
      case MsgType::Hello:
      case MsgType::Beat:
      case MsgType::Result:
      case MsgType::Welcome:
      case MsgType::Assign:
      case MsgType::Fenced:
      case MsgType::Shutdown:
        return type;
    }
    util::raiseError(util::SimErrorCode::BadWire,
                     "unknown shard wire message type ",
                     static_cast<unsigned>(raw));
}

std::string
frame(const std::string &payload)
{
    return util::frame(SHARD_MAGIC, payload);
}

void
sendFrame(int fd, const std::string &payload)
{
    util::sendFrame(fd, SHARD_MAGIC, payload);
}

std::string
encode(const HelloMsg &m)
{
    ByteWriter w = begin(MsgType::Hello);
    w.u32(m.version);
    w.u64(m.pid);
    return w.bytes();
}

HelloMsg
decodeHello(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Hello);
    HelloMsg m;
    m.version = rd.u32();
    m.pid = rd.u64();
    close(rd, MsgType::Hello);
    return m;
}

std::string
encode(const BeatMsg &m)
{
    ByteWriter w = begin(MsgType::Beat);
    w.u32(m.slot);
    w.u64(m.epoch);
    w.u64(m.done);
    return w.bytes();
}

BeatMsg
decodeBeat(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Beat);
    BeatMsg m;
    m.slot = rd.u32();
    m.epoch = rd.u64();
    m.done = rd.u64();
    close(rd, MsgType::Beat);
    return m;
}

std::string
encode(const ResultMsg &m)
{
    ByteWriter w = begin(MsgType::Result);
    w.u32(m.slot);
    w.u64(m.epoch);
    w.u64(m.ticket);
    w.str(m.record);
    return w.bytes();
}

ResultMsg
decodeResult(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Result);
    ResultMsg m;
    m.slot = rd.u32();
    m.epoch = rd.u64();
    m.ticket = rd.u64();
    m.record = rd.str();
    close(rd, MsgType::Result);
    return m;
}

std::string
encode(const WelcomeMsg &m)
{
    ByteWriter w = begin(MsgType::Welcome);
    w.u32(m.version);
    w.u32(m.slot);
    w.u64(m.epoch);
    w.u64(m.lease_ms);
    w.u64(m.beat_ms);
    return w.bytes();
}

WelcomeMsg
decodeWelcome(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Welcome);
    WelcomeMsg m;
    m.version = rd.u32();
    m.slot = rd.u32();
    m.epoch = rd.u64();
    m.lease_ms = rd.u64();
    m.beat_ms = rd.u64();
    close(rd, MsgType::Welcome);
    return m;
}

std::string
encode(const AssignMsg &m)
{
    ByteWriter w = begin(MsgType::Assign);
    w.u64(m.epoch);
    w.u64(m.jobs.size());
    for (const JobSpec &job : m.jobs) {
        w.u64(job.ticket);
        w.u64(job.job_index);
        w.str(job.machine_spec);
        w.str(job.profile_name);
        w.u64(job.profile_seed);
        w.u64(job.instructions);
        w.u8(job.has_base_seed ? 1 : 0);
        w.u64(job.base_seed);
        w.u64(job.deadline_ms);
        w.u32(job.retries);
        w.u64(job.backoff_ms);
    }
    // v2 optional trailing field: absent bytes decode as 0, and a
    // frame without it is exactly a v1 frame.
    if (m.trace_id != 0)
        w.u64(m.trace_id);
    return w.bytes();
}

AssignMsg
decodeAssign(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Assign);
    AssignMsg m;
    m.epoch = rd.u64();
    const std::uint64_t jobs = rd.u64();
    // Cap before allocating, as decodeSubmit does: the CRC is not a
    // secret, so a crafted count must not reserve gigabytes. Each
    // encoded job holds at least two string lengths and seven u64s.
    constexpr std::uint64_t MIN_JOB_BYTES = 4 + 4 + 7 * 8;
    if (jobs > payload.size() / MIN_JOB_BYTES)
        util::raiseError(util::SimErrorCode::BadWire,
                         "implausible shard assignment count ", jobs);
    m.jobs.reserve(jobs);
    for (std::uint64_t i = 0; i < jobs; ++i) {
        JobSpec job;
        job.ticket = rd.u64();
        job.job_index = rd.u64();
        job.machine_spec = rd.str();
        job.profile_name = rd.str();
        job.profile_seed = rd.u64();
        job.instructions = rd.u64();
        job.has_base_seed = rd.u8() != 0;
        job.base_seed = rd.u64();
        job.deadline_ms = rd.u64();
        job.retries = rd.u32();
        job.backoff_ms = rd.u64();
        m.jobs.push_back(std::move(job));
    }
    if (!rd.exhausted())
        m.trace_id = rd.u64();
    close(rd, MsgType::Assign);
    return m;
}

std::string
encode(const FencedMsg &m)
{
    ByteWriter w = begin(MsgType::Fenced);
    w.u64(m.epoch);
    return w.bytes();
}

FencedMsg
decodeFenced(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Fenced);
    FencedMsg m;
    m.epoch = rd.u64();
    close(rd, MsgType::Fenced);
    return m;
}

std::string
encode(const ShutdownMsg &)
{
    return begin(MsgType::Shutdown).bytes();
}

ShutdownMsg
decodeShutdown(const std::string &payload)
{
    ByteReader rd = open(payload, MsgType::Shutdown);
    close(rd, MsgType::Shutdown);
    return ShutdownMsg{};
}

} // namespace aurora::shard::wire
