/**
 * @file
 * Swarm coordinator: lease-fenced supervision of a shard fleet.
 *
 * The coordinator owns a sweep grid end to end: it partitions the
 * grid into coordinator-issued **tickets**, leases work to N shard
 * worker processes over the 'ASW1' wire protocol, and is the single
 * commit point — a job is done exactly when the coordinator accepts
 * its Result, and it can be accepted at most once.
 *
 * Supervision model (docs/distributed.md has the failure matrix):
 *
 *  - **Lease**: every shard incarnation holds an epoch-numbered
 *    lease, renewed by Beat messages. Epochs come from one global
 *    counter, so an epoch identifies an incarnation uniquely.
 *  - **Fencing**: a missed lease (no Beat within lease_ms), a
 *    dropped connection, or a protocol violation revokes the lease:
 *    the epoch joins the fenced set, and from that instant every
 *    message stamped with it — however delayed — is refused. A
 *    fenced shard's connection is *kept open* when possible, so a
 *    zombie's late Result can be observed, counted (AUR304), and
 *    answered with Fenced rather than silently ignored.
 *  - **Migration**: tickets in flight on a fenced incarnation return
 *    to the front of the pending queue, in submission order, and
 *    reassign to live shards. Determinism makes this safe: a job's
 *    result depends only on the job, so running it on a different
 *    shard — or twice, once behind the fence — cannot change what
 *    commits.
 *  - **Respawn**: in Fork/Exec spawn modes a fenced slot is refilled
 *    with a fresh process (bounded by max_respawns); in External
 *    mode the coordinator simply keeps going on the surviving
 *    shards, and a newly-dialled worker may claim the vacant slot.
 *
 * The final step of runGrid() is the deterministic merge
 * (shard_journal.hh): every commit is cross-checked byte-for-byte
 * against the per-epoch shard journals and every uncommitted journal
 * entry must sit behind the fence. The returned outcomes are in
 * submission order and bit-identical to a single-process
 * SweepRunner::runOutcomes() of the same grid (test_shard_merge
 * proves this across shard counts × kill schedules).
 */

#ifndef AURORA_SHARD_SWARM_HH
#define AURORA_SHARD_SWARM_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "faultinject/faultinject.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "obs/flight.hh"
#include "shard_journal.hh"
#include "shard_wire.hh"
#include "util/socket.hh"
#include "util/stats.hh"

namespace aurora::obs
{
class SpanLog;
}

namespace aurora::shard
{

/** How the coordinator obtains its shard worker processes. */
enum class SpawnMode
{
    /** fork() children that run runShardWorker() in-process — the
     *  default for the CLI and tests (no exec, no binary path). */
    Fork,
    /** fork()+exec() the `aurora_shardd` binary named by
     *  SwarmConfig::shardd_path — required inside multithreaded
     *  hosts (aurora_serve), where fork-without-exec is unsafe. */
    Exec,
    /** Workers are started externally (the chaos drill's mode: the
     *  script owns the pids so it can SIGKILL them mid-grid). The
     *  coordinator only accepts connections. */
    External,
};

struct SwarmConfig
{
    /** Unix socket the coordinator listens on. */
    std::string socket_path;
    /** Directory for per-epoch shard journals; shared with every
     *  worker (shardJournalPath()). */
    std::string journal_dir;
    /** Shard slots (target fleet size). */
    std::uint32_t shards = 2;
    SpawnMode spawn = SpawnMode::Fork;
    /** aurora_shardd binary (Exec mode). */
    std::string shardd_path;
    /** Miss Beats for this long and the lease is fenced. Must exceed
     *  the worst-case single-job wall time: a shard deep in one
     *  simulation cannot beat. */
    std::uint64_t lease_ms = 10'000;
    /** Beat cadence granted to shards (0 = lease_ms / 4). */
    std::uint64_t beat_ms = 0;
    /** Target in-flight tickets per shard. Two keeps a shard busy
     *  while its next assignment is in transit; the tail of the grid
     *  naturally drains to one. */
    std::uint32_t chunk = 2;
    /** Replacement processes per run across all slots (Fork/Exec). */
    std::uint32_t max_respawns = 8;
    /** External mode: give up when the fleet is empty and no worker
     *  has dialled in for this long. */
    std::uint64_t idle_timeout_ms = 30'000;
    /** Scripted sabotage per initial slot (Fork/Exec spawns only;
     *  respawned replacements are always healthy). */
    std::vector<std::optional<faultinject::ShardFaultPlan>> fault_plans;
    /** Log supervision events (fences, migrations, respawns). */
    bool verbose = false;
    /**
     * Observability directory: the coordinator spools its flight
     * recorder to `<dir>/swarm.flight`, and every worker it spawns
     * (any mode via ShardWorkerConfig / --flight-dir) writes
     * `<dir>/shard-e<epoch>.flight` + `.spans` there. Empty = no
     * flight recording and no shard span files.
     */
    std::string flight_dir;
};

/** Per-grid execution policy (the SweepOptions subset that crosses
 *  the wire, plus the coordinator's own durability knobs). */
struct GridOptions
{
    std::optional<std::uint64_t> base_seed;
    std::uint32_t retries = 0;
    std::uint64_t deadline_ms = 0;
    std::uint64_t backoff_ms = 0;
    /** Commit journal path (standard harness journal format,
     *  readable by loadJournal and resumable); empty = none. */
    std::string journal;
    /** Replay ok outcomes from an existing commit journal; only
     *  missing/failed jobs are dealt to shards. */
    bool resume = false;
    /** Lint the grid before dealing any work (preflightGrid()). */
    bool preflight = true;
    /**
     * Causal trace id of the grid (0 = untraced). Carried to v2
     * shards in Assign so the whole fabric derives one span family.
     */
    std::uint64_t trace_id = 0;
    /**
     * Sink for the coordinator's supervision spans (lease grants,
     * dispatches, migrations, merge) plus the shard attempt spans
     * folded in from flight_dir at merge time. Must outlive runGrid.
     * nullptr = no span collection.
     */
    obs::SpanLog *span_log = nullptr;
};

/** Supervision counters (asserted by tests, printed by the CLI). */
struct SwarmStats
{
    std::uint64_t granted_leases = 0;
    /** Leases fenced for missed beats (AUR301/AUR303). */
    std::uint64_t lease_expiries = 0;
    /** Leases fenced because the connection dropped (AUR302). */
    std::uint64_t shard_exits = 0;
    /** Stale-epoch Results refused behind the fence (AUR304). */
    std::uint64_t fenced_results = 0;
    /** Protocol violations (AUR305). */
    std::uint64_t protocol_errors = 0;
    /** Tickets migrated off fenced incarnations. */
    std::uint64_t migrated_jobs = 0;
    /** Replacement workers spawned (Fork/Exec). */
    std::uint64_t respawns = 0;
    /** Results committed (exactly-once; excludes resumed). */
    std::uint64_t committed = 0;
    /** Ok outcomes replayed from the commit journal. */
    std::uint64_t resumed = 0;
    /** Summed lifetime of closed leases, in ms (grant → fence/drain/
     *  shutdown); mean lease age = lease_ms_total / granted_leases. */
    std::uint64_t lease_ms_total = 0;
};

/**
 * The coordinator. Construction binds the socket; runGrid() runs one
 * grid to completion in the calling thread (single-threaded poll
 * loop — fork()-spawning is safe because the coordinator never holds
 * locks across fork()). A Swarm may run several grids in sequence;
 * stats accumulate.
 */
class Swarm
{
  public:
    explicit Swarm(SwarmConfig config);
    ~Swarm();

    Swarm(const Swarm &) = delete;
    Swarm &operator=(const Swarm &) = delete;

    /**
     * Execute @p grid across the shard fleet and return submission-
     * order outcomes bit-identical to a single-process
     * SweepRunner::runOutcomes() of the same grid. Spawns workers
     * (Fork/Exec) or awaits them (External), supervises leases,
     * migrates work off fenced shards, then merge-verifies the
     * per-epoch shard journals before returning. Throws SimError on
     * unrecoverable failure (merge violation, fleet lost and
     * unrecoverable, preflight rejection, bad resume journal).
     */
    std::vector<harness::SweepOutcome>
    runGrid(const std::vector<harness::SweepJob> &grid,
            const GridOptions &options);

    const SwarmStats &stats() const { return stats_; }

    /** Epochs revoked so far (tests inspect the fence set). */
    const std::set<std::uint64_t> &fencedEpochs() const
    {
        return fenced_epochs_;
    }

  private:
    using Clock = std::chrono::steady_clock;

    /** One shard slot (current incarnation, if any). */
    struct Slot
    {
        util::Fd fd; ///< invalid = vacant
        wire::FrameDecoder decoder;
        std::uint64_t epoch = 0;
        Clock::time_point last_beat{};
        Clock::time_point last_msg{};
        /** Tickets in flight on this incarnation, oldest first. */
        std::deque<std::uint64_t> assigned;
        /** Buffered unsent frames (a wedged shard must not block
         *  the coordinator in a blocking send). */
        std::string outbuf;
        std::size_t outpos = 0;
        /** Spawned child pid (Fork/Exec; -1 otherwise). */
        long pid = -1;
        /** Negotiated wire version (min of ours and the Hello's);
         *  Assign carries the trace id only at v2+. */
        std::uint32_t version = wire::MIN_SHARD_PROTOCOL_VERSION;
        /** Lease-grant timestamp on the obs clock (lease span start). */
        double lease_start_us = 0.0;
    };

    /** A connection whose epoch is fenced, kept open to observe and
     *  refuse zombie traffic (plus not-yet-welcomed dialers at
     *  epoch 0). */
    struct Loner
    {
        util::Fd fd;
        wire::FrameDecoder decoder;
        std::uint64_t epoch = 0; ///< 0 = awaiting Hello
        std::string outbuf;
        std::size_t outpos = 0;
        Clock::time_point opened{};
        /** Version from the dialer's Hello (set before grantLease). */
        std::uint32_t version = wire::MIN_SHARD_PROTOCOL_VERSION;
    };

    /** One grid job's coordination state. */
    struct Ticket
    {
        wire::JobSpec spec; ///< spec.ticket is the id
        bool committed = false;
        CommitRef commit; ///< valid when committed
        /** Obs-clock timestamp of the live assignment (dispatch span
         *  start; 0 = not currently assigned). */
        double assigned_us = 0.0;
        /** Epoch of the live assignment. */
        std::uint64_t assigned_epoch = 0;
    };

    void spawnWorker(
        const std::optional<faultinject::ShardFaultPlan> &fault);
    void grantLease(Loner &&dialer, std::uint64_t pid);
    void fenceSlot(std::uint32_t slot_index, const char *diagnostic,
                   bool keep_connection);
    void migrateAssigned(Slot &slot);
    void assignPending();
    void queueFrame(std::uint32_t slot_index,
                    const std::string &payload);
    void queueLonerFrame(Loner &loner, const std::string &payload);
    void pollOnce(int timeout_ms);
    void handleSlotMessage(std::uint32_t slot_index,
                           const std::string &payload);
    /** Returns whether the loner's connection should stay open. */
    bool handleLonerMessage(Loner &loner, const std::string &payload);
    void checkLeases();
    void reapChildren();
    void shutdownFleet();

    /** Microseconds on the coordinator's obs clock. */
    double obsNowUs() const { return obs_timer_.seconds() * 1e6; }
    /** Record a coordinator span (no-op when span_log_ is unset). */
    void obsSpan(std::uint64_t span_id, std::uint64_t parent_id,
                 std::string name, std::string cat, double ts_us,
                 double dur_us, bool instant = false,
                 std::string error = {});
    /** Close the lease span + flight-note a fence/drain of @p slot. */
    void obsLeaseEnd(const Slot &slot, const char *how,
                     const char *diagnostic);
    /** Close the dispatch span of @p ticket (commit or migration). */
    void obsDispatchEnd(Ticket &ticket, bool committed,
                        const char *error);

    SwarmConfig config_;
    util::Fd listener_;
    std::vector<Slot> slots_;
    std::vector<Loner> loners_;
    /** Unreaped pids of every spawned worker (Fork/Exec). */
    std::vector<long> children_;
    std::uint64_t next_epoch_ = 0;
    std::uint64_t next_ticket_ = 0;
    std::map<std::uint64_t, Ticket> tickets_;
    std::deque<std::uint64_t> pending_;
    std::uint64_t open_tickets_ = 0;
    std::set<std::uint64_t> fenced_epochs_;
    std::vector<ShardJournalRef> journal_refs_;
    harness::JournalWriter *commit_journal_ = nullptr; // runGrid-local
    Clock::time_point last_live_{};
    Clock::time_point last_spawn_{};
    /** Set while shutdownFleet() drains: slot EOFs are clean exits
     *  (not AUR302) and late dialers get Shutdown, not a lease. */
    bool draining_ = false;
    SwarmStats stats_;
    /** Obs clock epoch (span timestamps). */
    WallTimer obs_timer_;
    /** Coordinator flight recorder (spooled when flight_dir set). */
    obs::FlightRecorder flight_;
    /** runGrid-local trace context (mirrors commit_journal_). */
    std::uint64_t trace_id_ = 0;
    obs::SpanLog *span_log_ = nullptr;
};

} // namespace aurora::shard

#endif // AURORA_SHARD_SWARM_HH
