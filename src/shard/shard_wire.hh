/**
 * @file
 * Shard fabric wire protocol: coordinator <-> shard worker messages.
 *
 * Frames are util/frame's CRC framing under the 'ASW1' magic —
 * distinct from serve's 'AWP1' and the journal's 'AJRN', so a client
 * that dials the wrong socket is refused at its first frame. Payload
 * byte 0 is the MsgType; the rest is a ByteWriter/ByteReader
 * encoding, so seeds and doubles cross the wire bit-exactly.
 *
 * Conversation shape (coordinator supervises, shard pulls):
 *
 *   shard                          coordinator
 *   Hello{version, pid}       -->
 *                             <--  Welcome{slot, epoch, lease_ms,
 *                                          beat_ms}
 *                             <--  Assign{epoch, jobs}*   (chunked)
 *   Beat{slot, epoch, done}   -->  (renews the lease)
 *   Result{slot, epoch,
 *          ticket, record}    -->  (one per completed job)
 *                             <--  Fenced{epoch}  (lease lost: exit)
 *                             <--  Shutdown{}     (grid done: exit)
 *
 * The epoch is the fencing token (docs/distributed.md): the
 * coordinator stamps each lease grant with a fresh epoch, and every
 * shard->coordinator message carries the epoch the shard believes it
 * holds. A Result under any epoch other than the slot's current one
 * is refused — that is the entire zombie-append defence, so the
 * check lives in one place (Swarm::handleResult) and this header
 * keeps the token in every message shape.
 *
 * A Result's `record` field is exactly harness::encodeJournalRecord()
 * of the job's journal record, and the shard appends those same bytes
 * to its local journal *before* sending — what the coordinator
 * commits is bit-identical to what the shard persisted, which is what
 * makes the final merge's byte-equality cross-check possible.
 */

#ifndef AURORA_SHARD_SHARD_WIRE_HH
#define AURORA_SHARD_SHARD_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/frame.hh"

namespace aurora::shard::wire
{

/** Frame magic ('ASW1', little-endian). */
inline constexpr std::uint32_t SHARD_MAGIC = 0x31575341u;

/**
 * Protocol version carried in Hello/Welcome. The coordinator accepts
 * any version in [MIN_SHARD_PROTOCOL_VERSION, SHARD_PROTOCOL_VERSION]
 * and echoes the negotiated minimum in Welcome; anything else is
 * AUR305. v2 adds an optional trailing trace id on Assign — written
 * only when nonzero and only to v2 shards, so a v1 worker's decode
 * path never sees it.
 */
inline constexpr std::uint32_t SHARD_PROTOCOL_VERSION = 2;
inline constexpr std::uint32_t MIN_SHARD_PROTOCOL_VERSION = 1;

/** Payload byte 0. Shard→coordinator types are low, replies high. */
enum class MsgType : std::uint8_t
{
    Hello = 1,
    Beat = 2,
    Result = 3,

    Welcome = 64,
    Assign = 65,
    Fenced = 66,
    Shutdown = 67,
};

/** Display name ("Hello", "Fenced", ...) for logs and tests. */
const char *msgTypeName(MsgType type);

/** First byte of @p payload as a MsgType; BadWire when empty or not
 *  a known type. */
MsgType peekType(const std::string &payload);

/** util::FrameDecoder fixed to the shard fabric's magic. */
class FrameDecoder : public util::FrameDecoder
{
  public:
    FrameDecoder() : util::FrameDecoder(SHARD_MAGIC) {}
};

/** Wrap @p payload in a shard wire frame. */
std::string frame(const std::string &payload);

/** Blocking send of one framed payload. */
void sendFrame(int fd, const std::string &payload);

/// @name Messages (shard → coordinator)
/// @{

struct HelloMsg
{
    std::uint32_t version = SHARD_PROTOCOL_VERSION;
    /** Shard's pid, for the coordinator's logs and kill drills. */
    std::uint64_t pid = 0;
};

/** Lease renewal. Sent between jobs and while idle; a shard deep in
 *  one long simulation cannot beat, so the lease must exceed the
 *  worst-case job time (docs/distributed.md). */
struct BeatMsg
{
    std::uint32_t slot = 0;
    std::uint64_t epoch = 0;
    /** Jobs this incarnation has completed (monotone; logs only). */
    std::uint64_t done = 0;
};

struct ResultMsg
{
    std::uint32_t slot = 0;
    /** Epoch the shard holds — the fencing token. */
    std::uint64_t epoch = 0;
    /** Coordinator-issued job ticket this result answers. */
    std::uint64_t ticket = 0;
    /** harness::encodeJournalRecord() bytes, already durable in the
     *  shard's local journal. */
    std::string record;
};

/// @}
/// @name Messages (coordinator → shard)
/// @{

struct WelcomeMsg
{
    std::uint32_t version = SHARD_PROTOCOL_VERSION;
    /** Stable slot index [0, shards) this connection now serves. */
    std::uint32_t slot = 0;
    /** Freshly-granted lease epoch; stamp every message with it. */
    std::uint64_t epoch = 0;
    /** Miss a beat for this long and the lease is fenced. */
    std::uint64_t lease_ms = 0;
    /** Target cadence for Beat messages (lease_ms / 4 or better). */
    std::uint64_t beat_ms = 0;
};

/** One grid point, in the portable form the shard re-hydrates with
 *  core::parseMachineSpec() + trace::profileByName() (the profile's
 *  seed is then overwritten with profile_seed, so a caller-tweaked
 *  seed survives the wire; mix fractions are canonical-by-name,
 *  exactly as aurora_serve assumes). */
struct JobSpec
{
    /** Coordinator-issued commit ticket (unique per assignment). */
    std::uint64_t ticket = 0;
    /** Submission-order index in the original grid. */
    std::uint64_t job_index = 0;
    std::string machine_spec;
    std::string profile_name;
    std::uint64_t profile_seed = 0;
    std::uint64_t instructions = 0;
    /** SweepOptions mirror (per job so mixed grids can share a
     *  fabric in service mode). */
    bool has_base_seed = false;
    std::uint64_t base_seed = 0;
    std::uint64_t deadline_ms = 0;
    std::uint32_t retries = 0;
    std::uint64_t backoff_ms = 0;
};

struct AssignMsg
{
    /** Epoch these assignments are valid under. */
    std::uint64_t epoch = 0;
    std::vector<JobSpec> jobs;
    /**
     * v2: the grid's causal trace id (0 = untraced). The shard
     * derives its attempt-span identities from it (obs/ids.hh), so
     * the coordinator's merged trace parents them without any id
     * exchange. Optional trailing field.
     */
    std::uint64_t trace_id = 0;
};

/** The slot's lease was revoked; the named epoch is dead and every
 *  result sent under it will be refused. The shard must exit. */
struct FencedMsg
{
    std::uint64_t epoch = 0;
};

/** Clean end-of-grid: drain and exit 0. */
struct ShutdownMsg
{
};

/// @}

/// Encode one message to its payload bytes (type byte included).
/// @{
std::string encode(const HelloMsg &m);
std::string encode(const BeatMsg &m);
std::string encode(const ResultMsg &m);
std::string encode(const WelcomeMsg &m);
std::string encode(const AssignMsg &m);
std::string encode(const FencedMsg &m);
std::string encode(const ShutdownMsg &m);
/// @}

/// Decode one payload; throws SimError(BadWire) on a wrong type byte,
/// an out-of-range field, or trailing bytes (format mismatch).
/// @{
HelloMsg decodeHello(const std::string &payload);
BeatMsg decodeBeat(const std::string &payload);
ResultMsg decodeResult(const std::string &payload);
WelcomeMsg decodeWelcome(const std::string &payload);
AssignMsg decodeAssign(const std::string &payload);
FencedMsg decodeFenced(const std::string &payload);
ShutdownMsg decodeShutdown(const std::string &payload);
/// @}

} // namespace aurora::shard::wire

#endif // AURORA_SHARD_SHARD_WIRE_HH
