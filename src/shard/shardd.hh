/**
 * @file
 * Shard worker: one process's share of a distributed sweep.
 *
 * A shard worker dials the coordinator's Unix socket, receives a
 * slot + lease epoch (Welcome), and then loops: pull assigned jobs,
 * execute each through a per-job SweepRunner (workers=1 — exactly
 * the execution shape aurora_serve uses, so results are bit-identical
 * to both the daemon and a serial run), append the outcome to its
 * per-epoch local journal, *then* offer it to the coordinator
 * (durable-before-visible), heartbeating between jobs to renew its
 * lease.
 *
 * The worker is deliberately trusting and dumb: all placement,
 * migration, fencing, and exactly-once logic lives in the
 * coordinator. On Fenced it exits — its epoch is dead, and any work
 * it still holds has already been handed to a live shard. On
 * Shutdown it exits cleanly.
 *
 * Fault plans (faultinject::ShardFaultPlan) script the four failure
 * modes the supervision layer must absorb — crash, wedge, silent
 * partition, and post-fence zombie append — at a deterministic point
 * in the job stream. Exec'd workers read the plan from the
 * AURORA_SHARD_FAULT environment variable; in-process workers get it
 * in the config.
 */

#ifndef AURORA_SHARD_SHARDD_HH
#define AURORA_SHARD_SHARDD_HH

#include <cstdint>
#include <optional>
#include <string>

#include "faultinject/faultinject.hh"

namespace aurora::shard
{

/** Environment variable carrying a formatShardFaultPlan() string to
 *  an exec'd `aurora_shardd` (parse failures are fatal — a shard
 *  must never misread sabotage orders into different sabotage). */
inline constexpr const char *SHARD_FAULT_ENV = "AURORA_SHARD_FAULT";

/** Exit codes a shard worker reports (asserted by drills). */
enum : int
{
    SHARD_EXIT_OK = 0,      ///< Shutdown received; grid done
    SHARD_EXIT_FENCED = 2,  ///< lease revoked; exited on Fenced
    SHARD_EXIT_ERROR = 3,   ///< connect/protocol/journal failure
    SHARD_EXIT_KILLED = 137 ///< KillShard fault (mimics SIGKILL)
};

struct ShardWorkerConfig
{
    /** Coordinator's listen socket. */
    std::string socket_path;
    /** Directory for per-epoch local journals (must be shared with
     *  the coordinator — see shardJournalPath()). */
    std::string journal_dir;
    /** Keep retrying the initial connect for this long (external
     *  drills may start workers before the coordinator listens). */
    std::uint64_t connect_timeout_ms = 5000;
    /** Scripted failure, if any. */
    std::optional<faultinject::ShardFaultPlan> fault;
    /**
     * Observability directory (normally the coordinator's): when
     * non-empty this incarnation writes `shard-e<epoch>.flight`
     * (write-through flight recorder — survives SIGKILL) and
     * `shard-e<epoch>.spans` (crash-durable attempt spans the
     * coordinator folds into the grid trace) there.
     */
    std::string flight_dir;
};

/** Journal path convention shared by worker and coordinator: one
 *  file per granted epoch under the common journal directory. */
std::string shardJournalPath(const std::string &journal_dir,
                             std::uint64_t epoch);

/**
 * Run one shard worker to completion. Returns a SHARD_EXIT_* code
 * (KillShard _exit()s instead of returning). Blocking; the caller is
 * expected to be a dedicated process (aurora_shardd main, or a
 * fork()ed child of the coordinator or a test).
 */
int runShardWorker(const ShardWorkerConfig &config);

} // namespace aurora::shard

#endif // AURORA_SHARD_SHARDD_HH
