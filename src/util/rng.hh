/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every experiment in the study must be bit-reproducible, so all
 * randomness flows through an explicitly seeded Rng instance; no global
 * generator state exists. The core generator is xoshiro256** which is
 * fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef AURORA_UTIL_RNG_HH
#define AURORA_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace aurora
{

/**
 * Seedable xoshiro256** generator with distribution helpers used by the
 * synthetic trace generators.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed expanded via splitmix64. */
    explicit Rng(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method; bound > 0. */
    std::uint64_t uniform(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Geometric number of trials until first success (>= 1) with
     * success probability p; the mean is 1/p. Used for run lengths.
     */
    std::uint64_t geometric(double p);

    /**
     * Sample an index from a discrete distribution given by
     * non-negative weights. At least one weight must be positive.
     */
    std::size_t weighted(const std::vector<double> &weights);

    /**
     * Approximate Zipf sample in [0, n) with exponent s, used for
     * skewed data reuse patterns (hot vs. cold addresses).
     */
    std::uint64_t zipf(std::uint64_t n, double s);

  private:
    std::uint64_t s_[4];
};

} // namespace aurora

#endif // AURORA_UTIL_RNG_HH
