/**
 * @file
 * Minimal work-stealing parallel-for over an index range.
 *
 * Simulation jobs are embarrassingly parallel (each Processor owns
 * its entire machine state and workload generator), so the only
 * machinery needed is a fixed pool of std::thread workers pulling
 * indices from a shared atomic counter. The body writes results by
 * index, which makes output order independent of completion order —
 * the property the sweep determinism tests pin down.
 */

#ifndef AURORA_UTIL_PARALLEL_HH
#define AURORA_UTIL_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace aurora
{

/**
 * Worker-thread count for parallel sections: the AURORA_JOBS
 * environment variable when set and valid, otherwise
 * hardware_concurrency(). Always at least 1.
 */
unsigned defaultWorkers();

/**
 * Invocation accounting for one parallelFor call. The identity
 * `ran + skipped == n` always holds, even when the call throws —
 * fail-fast used to abandon queued indices silently, which made
 * sweep reports un-balanceable (jobs != ok + failed + skipped).
 */
struct ParallelResult
{
    /** Bodies invoked to completion (including ones that threw). */
    std::size_t ran = 0;
    /** Bodies that threw. */
    std::size_t failed = 0;
    /** Queued bodies never invoked because fail-fast aborted first. */
    std::size_t skipped = 0;
};

/**
 * Invoke body(i) for every i in [0, n) across @p workers threads
 * (0 = defaultWorkers(); 1 = serial in the calling thread; never
 * more threads than items).
 *
 * Exception guarantee (fail-fast, first-exception-wins): the first
 * exception thrown by any invocation is captured, no further indices
 * are scheduled, invocations already in flight run to completion (and
 * may also throw), all workers are joined, and the captured exception
 * is rethrown in the calling thread — the pool cannot deadlock on a
 * throwing body. When more than one invocation failed, a warning
 * reporting the failure count is emitted before the rethrow so the
 * single rethrown error is not silently lossy. In the serial path
 * (one worker) the first exception propagates immediately and later
 * indices never run.
 *
 * When @p accounting is non-null it is filled before the call
 * returns *or throws*, so a caller catching the fail-fast exception
 * can still report how many queued bodies were drained unrun
 * (`skipped`) — the counts a sweep report needs to balance.
 *
 * Callers that must survive individual failures (per-job sweep
 * isolation) should catch inside the body instead — see
 * harness::SweepRunner::runOutcomes().
 */
void parallelFor(std::size_t n, unsigned workers,
                 const std::function<void(std::size_t)> &body,
                 ParallelResult *accounting = nullptr);

} // namespace aurora

#endif // AURORA_UTIL_PARALLEL_HH
