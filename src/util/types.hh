/**
 * @file
 * Fundamental scalar type aliases shared by every aurora subsystem.
 *
 * The simulator models a 32-bit MIPS-R3000-ISA machine, but cycle
 * counters and instruction counters routinely exceed 2^32 during long
 * experiments, so all counters are 64 bits wide.
 */

#ifndef AURORA_UTIL_TYPES_HH
#define AURORA_UTIL_TYPES_HH

#include <cstdint>

namespace aurora
{

/** Byte address in the simulated 32-bit physical address space. */
using Addr = std::uint32_t;

/** Absolute simulated clock cycle (monotonically increasing). */
using Cycle = std::uint64_t;

/** Count of instructions, events, or other unbounded tallies. */
using Count = std::uint64_t;

/** Architectural register index (0..31 for both integer and FP files). */
using RegIndex = std::uint8_t;

/** Sentinel register index meaning "no register operand". */
inline constexpr RegIndex NO_REG = 0xff;

/** Sentinel cycle meaning "never" / "not scheduled". */
inline constexpr Cycle NEVER = ~Cycle{0};

} // namespace aurora

#endif // AURORA_UTIL_TYPES_HH
