#include "frame.hh"

#include <chrono>

#include "logging.hh"
#include "record_io.hh"
#include "sim_error.hh"
#include "socket.hh"

namespace aurora::util
{

namespace
{

std::uint32_t
readU32(const std::string &buf, std::size_t pos)
{
    return static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf[pos])) |
           static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf[pos + 1]))
               << 8 |
           static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf[pos + 2]))
               << 16 |
           static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf[pos + 3]))
               << 24;
}

} // namespace

std::string
frame(std::uint32_t magic, const std::string &payload)
{
    AURORA_ASSERT(payload.size() <= MAX_RECORD_BYTES,
                  "wire payload of ", payload.size(),
                  " bytes exceeds the frame cap");
    ByteWriter w;
    w.u32(magic);
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.u32(crc32(payload));
    std::string out = w.bytes();
    out += payload;
    return out;
}

void
FrameDecoder::feed(const char *data, std::size_t len)
{
    buf_.append(data, len);
}

void
FrameDecoder::feed(const std::string &bytes)
{
    buf_ += bytes;
}

FrameStatus
FrameDecoder::next(std::string &payload)
{
    // Reclaim consumed prefix once it dominates the buffer, so a
    // long-lived session doesn't grow its buffer without bound.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    if (buf_.size() - pos_ < FRAME_HEADER_BYTES)
        return FrameStatus::NeedMore;
    if (readU32(buf_, pos_) != magic_)
        return FrameStatus::Corrupt;
    const std::uint32_t len = readU32(buf_, pos_ + 4);
    if (len > MAX_RECORD_BYTES)
        return FrameStatus::Corrupt;
    if (buf_.size() - pos_ < FRAME_HEADER_BYTES + len)
        return FrameStatus::NeedMore;
    const std::uint32_t crc = readU32(buf_, pos_ + 8);
    payload.assign(buf_, pos_ + FRAME_HEADER_BYTES, len);
    if (crc32(payload) != crc) {
        payload.clear();
        return FrameStatus::Corrupt;
    }
    pos_ += FRAME_HEADER_BYTES + len;
    return FrameStatus::Ok;
}

void
sendFrame(int fd, std::uint32_t magic, const std::string &payload)
{
    writeAll(fd, frame(magic, payload));
}

std::optional<std::string>
recvFrame(int fd, FrameDecoder &decoder, std::uint64_t timeout_ms)
{
    // The timeout bounds the whole frame, not each read: a peer
    // trickling one byte per poll must not keep a timed client
    // blocked past its budget.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    std::string payload;
    for (;;) {
        switch (decoder.next(payload)) {
          case FrameStatus::Ok:
            return payload;
          case FrameStatus::Corrupt:
            raiseError(SimErrorCode::BadWire,
                       "corrupt wire frame (bad magic, length, "
                       "or CRC)");
          case FrameStatus::NeedMore:
            break;
        }
        std::uint64_t wait_ms = 0;
        if (timeout_ms != 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (left <= 0)
                raiseError(SimErrorCode::BadWire, "timed out after ",
                           timeout_ms,
                           " ms waiting for a complete frame");
            wait_ms = static_cast<std::uint64_t>(left);
        }
        std::string chunk;
        const std::size_t n = readBlocking(fd, chunk, 64 * 1024, wait_ms);
        if (n == 0) {
            if (decoder.atFrameBoundary())
                return std::nullopt;
            raiseError(SimErrorCode::BadWire, "peer closed mid-frame");
        }
        decoder.feed(chunk);
    }
}

} // namespace aurora::util
