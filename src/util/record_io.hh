/**
 * @file
 * Crash-safe append-only record files (the sweep-journal substrate).
 *
 * A journal must survive the process that writes it being SIGKILLed
 * mid-append: everything already flushed stays readable, and the one
 * record that may have been torn is detected and dropped rather than
 * poisoning the file. Each record is therefore framed independently:
 *
 *     [u32 magic 'AJRN'] [u32 payload_len] [u32 crc32(payload)] [payload]
 *
 * all little-endian. The reader classifies what it finds:
 *
 *  - a record that ends exactly at EOF with a valid CRC is Ok;
 *  - bytes at EOF too short to complete a header or payload are a
 *    torn tail (TruncatedTail) — the expected signature of a killed
 *    writer, recoverable by dropping the fragment;
 *  - a bad magic, an implausible length, or a CRC mismatch on a
 *    complete record is Corrupt — the file was damaged, not torn,
 *    and the caller must not trust any of it.
 *
 * Payloads are encoded with ByteWriter/ByteReader: explicit
 * little-endian integers and bit-exact doubles, so a journaled
 * statistic replays on any host exactly as it was measured.
 */

#ifndef AURORA_UTIL_RECORD_IO_HH
#define AURORA_UTIL_RECORD_IO_HH

#include <cstdint>
#include <fstream>
#include <string>

#include "sim_error.hh"

namespace aurora::util
{

/** CRC-32 (IEEE 802.3, reflected) of @p len bytes at @p data. */
std::uint32_t crc32(const void *data, std::size_t len);

/** crc32 over a byte string. */
std::uint32_t crc32(const std::string &bytes);

/** FNV-1a 64-bit digest of a byte string (fingerprints, hashes). */
std::uint64_t fnv1a64(const std::string &bytes,
                      std::uint64_t h = 0xcbf29ce484222325ull);

/** Little-endian append-only payload encoder. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** Bit-exact double (round-trips NaN payloads and -0.0). */
    void f64(double v);
    /** Length-prefixed string. */
    void str(const std::string &s);

    const std::string &bytes() const { return bytes_; }

  private:
    std::string bytes_;
};

/**
 * Little-endian payload decoder. An underrun — asking for more bytes
 * than the payload holds — throws SimError(BadJournal): the payload
 * passed its CRC, so a short read means a format/version mismatch,
 * not bit rot.
 */
class ByteReader
{
  public:
    explicit ByteReader(const std::string &bytes) : bytes_(bytes) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    /** Payload fully consumed? (Decoders check this last.) */
    bool exhausted() const { return pos_ == bytes_.size(); }

  private:
    void need(std::size_t n) const;

    const std::string &bytes_;
    std::size_t pos_ = 0;
};

/** What RecordFileReader::next() found. */
enum class RecordStatus
{
    Ok,            ///< a complete, CRC-valid record
    EndOfFile,     ///< clean end: the previous record ended at EOF
    TruncatedTail, ///< torn final record (killed writer); drop it
    Corrupt,       ///< damaged mid-file: bad magic, length, or CRC
};

/** Display name of a RecordStatus. */
const char *recordStatusName(RecordStatus status);

/**
 * Append-only record writer. Every append() frames the payload,
 * writes it, and flushes to the OS so a later SIGKILL cannot lose it
 * (a kill *during* append leaves at most one torn tail record).
 */
class RecordFileWriter
{
  public:
    /**
     * @param path file to write; @p truncate starts fresh, otherwise
     *        appends after existing records. Throws
     *        SimError(BadJournal) if the file cannot be opened.
     */
    RecordFileWriter(const std::string &path, bool truncate);

    /** Frame, write, and flush one payload. */
    void append(const std::string &payload);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ofstream out_;
};

/** Sequential reader over a record file. */
class RecordFileReader
{
  public:
    /** Throws SimError(BadJournal) if @p path cannot be opened. */
    explicit RecordFileReader(const std::string &path);

    /**
     * Read the next record into @p payload. Returns Ok with the
     * payload filled, or a terminal status (EndOfFile /
     * TruncatedTail / Corrupt) after which next() must not be called
     * again.
     */
    RecordStatus next(std::string &payload);

    /**
     * File offset just past the last Ok record. After a
     * TruncatedTail, truncating the file to this length removes the
     * torn fragment so an appending writer does not bury it mid-file
     * (where the next reader would classify it Corrupt).
     */
    std::uint64_t goodBytes() const { return good_bytes_; }

  private:
    std::string path_;
    std::ifstream in_;
    std::uint64_t good_bytes_ = 0;
};

/** Sanity cap on a single record (a corrupt length field must not
 *  trigger a gigabyte allocation). */
inline constexpr std::uint32_t MAX_RECORD_BYTES = 1u << 24;

} // namespace aurora::util

#endif // AURORA_UTIL_RECORD_IO_HH
