#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace aurora
{

namespace
{

/**
 * Serializes every log line. Sweep workers log concurrently; without
 * this, two warn() calls could interleave mid-line on platforms where
 * fprintf is not atomic per call.
 */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

void
emitLine(const char *prefix, const std::string &msg)
{
    const std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
    std::fflush(stderr);
}

} // namespace

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        const std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
        std::fflush(stderr);
    }
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        const std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
        std::fflush(stderr);
    }
    std::exit(1);
}

void
warn(const std::string &msg)
{
    emitLine("warn", msg);
}

void
inform(const std::string &msg)
{
    emitLine("info", msg);
}

} // namespace aurora
