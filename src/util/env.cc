#include "env.hh"

#include <cctype>
#include <cstdlib>

#include "logging.hh"

namespace aurora
{

std::optional<Count>
parseCount(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    if (begin == end)
        return std::nullopt;

    Count value = 0;
    for (std::size_t i = begin; i < end; ++i) {
        const char c = text[i];
        if (c < '0' || c > '9')
            return std::nullopt;
        const Count digit = static_cast<Count>(c - '0');
        if (value > (~Count{0} - digit) / 10)
            return std::nullopt; // overflow
        value = value * 10 + digit;
    }
    return value;
}

Count
envCount(const char *name, Count fallback, Count min)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr)
        return fallback;
    const auto parsed = parseCount(raw);
    if (!parsed) {
        warn(detail::concat(name, "=\"", raw,
                            "\" is not a valid count; using ",
                            fallback));
        return fallback;
    }
    if (*parsed < min) {
        warn(detail::concat(name, "=", *parsed, " is below the minimum ",
                            min, "; using ", fallback));
        return fallback;
    }
    return *parsed;
}

bool
envFlag(const char *name, bool fallback)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr)
        return fallback;
    const std::string value(raw);
    if (value == "1" || value == "on" || value == "true")
        return true;
    if (value == "0" || value == "off" || value == "false")
        return false;
    warn(detail::concat(name, "=\"", raw,
                        "\" is not a valid flag (accepted: 1/on/true, "
                        "0/off/false); using ", fallback ? "1" : "0"));
    return fallback;
}

std::optional<std::string>
envString(const char *name)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return std::nullopt;
    return std::string(raw);
}

} // namespace aurora
