/**
 * @file
 * Small statistics toolkit used throughout the simulator.
 *
 * Accumulator collects a running count/mean/min/max/variance without
 * storing samples (Welford). Ratio tracks hit/total style rates.
 * Histogram buckets integer samples for distribution reporting.
 */

#ifndef AURORA_UTIL_STATS_HH
#define AURORA_UTIL_STATS_HH

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "types.hh"

namespace aurora
{

/** Streaming scalar accumulator (Welford's online algorithm). */
class Accumulator
{
  public:
    /** Record one sample. */
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
        sum_ += x;
    }

    /** Number of samples recorded so far. */
    Count count() const { return n_; }
    /** Sum of all samples (0 when empty). */
    double sum() const { return sum_; }
    /** Arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }
    /** Largest sample (-inf when empty). */
    double max() const { return max_; }
    /** Population variance (0 with fewer than two samples). */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
    }
    /** Population standard deviation. */
    double stddev() const;

    /** Forget all samples. */
    void reset() { *this = Accumulator{}; }

  private:
    Count n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Hit/total rate counter (e.g. cache hit rates). */
class Ratio
{
  public:
    /** Record one trial; hit selects the numerator. */
    void
    record(bool hit)
    {
        ++total_;
        if (hit)
            ++hits_;
    }

    /** Record multiple hits/misses at once. */
    void
    recordMany(Count hits, Count total)
    {
        hits_ += hits;
        total_ += total;
    }

    Count hits() const { return hits_; }
    Count misses() const { return total_ - hits_; }
    Count total() const { return total_; }

    /** Hit fraction in [0,1]; 0 when no trials recorded. */
    double
    rate() const
    {
        return total_ ? static_cast<double>(hits_) /
                            static_cast<double>(total_)
                      : 0.0;
    }

    /** Hit rate as a percentage, matching the paper's tables. */
    double percent() const { return rate() * 100.0; }

    void reset() { *this = Ratio{}; }

  private:
    Count hits_ = 0;
    Count total_ = 0;
};

/** Fixed-bucket histogram over non-negative integer samples. */
class Histogram
{
  public:
    /**
     * @param num_buckets number of unit-width buckets; samples at or
     *        beyond the last bucket accumulate in the overflow bucket.
     */
    explicit Histogram(std::size_t num_buckets)
        : buckets_(num_buckets, 0)
    {}

    /** Record one sample. */
    void
    add(std::uint64_t x)
    {
        ++n_;
        sum_ += x;
        if (x > max_)
            max_ = x;
        if (x < buckets_.size())
            ++buckets_[static_cast<std::size_t>(x)];
        else
            ++overflow_;
    }

    Count count() const { return n_; }
    Count overflow() const { return overflow_; }
    /** Sum of all recorded samples. */
    std::uint64_t sum() const { return sum_; }
    /** Largest recorded sample (0 when empty). */
    std::uint64_t maxSample() const { return max_; }
    /** Mean of all recorded samples. */
    double
    mean() const
    {
        return n_ ? static_cast<double>(sum_) / static_cast<double>(n_)
                  : 0.0;
    }
    /**
     * Smallest sample value v such that at least ceil(p * count)
     * samples are <= v (the inverse empirical CDF). Samples that
     * landed in the overflow bucket report maxSample(). 0 when empty;
     * @p p is clamped to [0, 1].
     */
    std::uint64_t percentile(double p) const;
    /** Occupancy of bucket i. */
    Count bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }

  private:
    std::vector<Count> buckets_;
    Count overflow_ = 0;
    Count n_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/** Monotonic wall-clock stopwatch (per-job and sweep timing). */
class WallTimer
{
  public:
    /** Construction starts the clock. */
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Restart the clock. */
    void reset() { start_ = std::chrono::steady_clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Format a double with fixed decimals (helper for reports). */
std::string formatFixed(double value, int decimals);

} // namespace aurora

#endif // AURORA_UTIL_STATS_HH
