#include "parallel.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "env.hh"
#include "logging.hh"

namespace aurora
{

unsigned
defaultWorkers()
{
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    return static_cast<unsigned>(
        envCount("AURORA_JOBS", hw, /*min=*/1));
}

void
parallelFor(std::size_t n, unsigned workers,
            const std::function<void(std::size_t)> &body,
            ParallelResult *accounting)
{
    if (accounting)
        *accounting = ParallelResult{};
    if (n == 0)
        return;
    if (workers == 0)
        workers = defaultWorkers();
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, n));

    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            try {
                body(i);
            } catch (...) {
                // Drain the queue into the accounting before the
                // fail-fast rethrow: indices after i never run.
                if (accounting)
                    *accounting = {i + 1, 1, n - i - 1};
                throw;
            }
        }
        if (accounting)
            *accounting = {n, 0, 0};
        return;
    }

    std::atomic<std::size_t> ran{0};
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> failures{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;

    const auto drain = [&]() {
        while (!failed.load(std::memory_order_relaxed)) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                body(i);
                ran.fetch_add(1, std::memory_order_relaxed);
            } catch (...) {
                ran.fetch_add(1, std::memory_order_relaxed);
                failures.fetch_add(1, std::memory_order_relaxed);
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(drain);
    drain();
    for (std::thread &t : pool)
        t.join();

    if (accounting) {
        const std::size_t invoked =
            ran.load(std::memory_order_relaxed);
        *accounting = {invoked,
                       failures.load(std::memory_order_relaxed),
                       n - invoked};
    }
    if (error) {
        const std::size_t count =
            failures.load(std::memory_order_relaxed);
        if (count > 1)
            warn(detail::concat("parallelFor: ", count, " of ", n,
                                " invocations failed; rethrowing the "
                                "first error only"));
        std::rethrow_exception(error);
    }
}

} // namespace aurora
