#include "record_io.hh"

#include <array>
#include <cstring>

namespace aurora::util
{

namespace
{

/** Per-record frame marker ('AJRN' little-endian). */
constexpr std::uint32_t RECORD_MAGIC = 0x4e524a41u;

constexpr std::array<std::uint32_t, 256>
crcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

void
putU32(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = crcTable();
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::uint32_t
crc32(const std::string &bytes)
{
    return crc32(bytes.data(), bytes.size());
}

std::uint64_t
fnv1a64(const std::string &bytes, std::uint64_t h)
{
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
ByteWriter::u32(std::uint32_t v)
{
    putU32(bytes_, v);
}

void
ByteWriter::u64(std::uint64_t v)
{
    u32(static_cast<std::uint32_t>(v & 0xffffffffu));
    u32(static_cast<std::uint32_t>(v >> 32));
}

void
ByteWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.append(s);
}

void
ByteReader::need(std::size_t n) const
{
    if (bytes_.size() - pos_ < n)
        raiseError(SimErrorCode::BadJournal, "record underrun: need ",
                   n, " bytes at offset ", pos_, " of ", bytes_.size(),
                   " (format/version mismatch?)");
}

std::uint8_t
ByteReader::u8()
{
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t
ByteReader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[pos_ + k]))
             << (8 * k);
    pos_ += 4;
    return v;
}

std::uint64_t
ByteReader::u64()
{
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
}

double
ByteReader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteReader::str()
{
    const std::uint32_t n = u32();
    need(n);
    std::string s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
}

const char *
recordStatusName(RecordStatus status)
{
    switch (status) {
      case RecordStatus::Ok: return "Ok";
      case RecordStatus::EndOfFile: return "EndOfFile";
      case RecordStatus::TruncatedTail: return "TruncatedTail";
      case RecordStatus::Corrupt: return "Corrupt";
    }
    return "Unknown";
}

RecordFileWriter::RecordFileWriter(const std::string &path,
                                   bool truncate)
    : path_(path),
      out_(path, truncate ? std::ios::binary | std::ios::trunc
                          : std::ios::binary | std::ios::app)
{
    if (!out_)
        raiseError(SimErrorCode::BadJournal, "cannot open '", path,
                   "' for writing");
}

void
RecordFileWriter::append(const std::string &payload)
{
    if (payload.size() > MAX_RECORD_BYTES)
        raiseError(SimErrorCode::BadJournal, "record of ",
                   payload.size(), " bytes exceeds the ",
                   MAX_RECORD_BYTES, "-byte frame limit");
    std::string frame;
    frame.reserve(12 + payload.size());
    putU32(frame, RECORD_MAGIC);
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    putU32(frame, crc32(payload));
    frame.append(payload);
    // One write + flush per record: a kill between appends loses
    // nothing, a kill mid-append tears at most this record's tail.
    out_.write(frame.data(),
               static_cast<std::streamsize>(frame.size()));
    out_.flush();
    if (!out_)
        raiseError(SimErrorCode::BadJournal, "write to '", path_,
                   "' failed");
}

RecordFileReader::RecordFileReader(const std::string &path)
    : path_(path), in_(path, std::ios::binary)
{
    if (!in_)
        raiseError(SimErrorCode::BadJournal, "cannot open '", path,
                   "' for reading");
}

RecordStatus
RecordFileReader::next(std::string &payload)
{
    std::array<char, 12> header;
    in_.read(header.data(), header.size());
    const std::streamsize got = in_.gcount();
    if (got == 0)
        return RecordStatus::EndOfFile;
    if (got < static_cast<std::streamsize>(header.size()))
        return RecordStatus::TruncatedTail;

    const auto u32At = [&header](std::size_t off) {
        std::uint32_t v = 0;
        for (int k = 0; k < 4; ++k)
            v |= static_cast<std::uint32_t>(static_cast<unsigned char>(
                     header[off + static_cast<std::size_t>(k)]))
                 << (8 * k);
        return v;
    };
    const std::uint32_t magic = u32At(0);
    const std::uint32_t len = u32At(4);
    const std::uint32_t crc = u32At(8);
    if (magic != RECORD_MAGIC || len > MAX_RECORD_BYTES)
        return RecordStatus::Corrupt;

    payload.resize(len);
    in_.read(payload.data(), static_cast<std::streamsize>(len));
    if (in_.gcount() < static_cast<std::streamsize>(len))
        return RecordStatus::TruncatedTail;
    if (crc32(payload) != crc)
        return RecordStatus::Corrupt;
    good_bytes_ += header.size() + len;
    return RecordStatus::Ok;
}

} // namespace aurora::util
