#include "table.hh"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>

#include "logging.hh"
#include "stats.hh"

namespace aurora
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    AURORA_ASSERT(!headers_.empty(), "a table needs at least one column");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    AURORA_ASSERT(!rows_.empty(), "call row() before cell()");
    AURORA_ASSERT(rows_.back().size() < headers_.size(),
                  "row has more cells than headers");
    rows_.back().push_back(text);
    return *this;
}

Table &
Table::cell(double value, int decimals)
{
    return cell(formatFixed(value, decimals));
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

std::string
Table::ascii() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &text =
                c < cells.size() ? cells[c] : std::string{};
            os << (c ? "  " : "");
            os << text;
            os << std::string(width[c] - text.size(), ' ');
        }
        os << '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
Table::csv() const
{
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c ? "," : "") << cells[c];
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
Table::print(std::ostream &os, const std::string &title) const
{
    if (!title.empty())
        os << title << '\n';
    os << ascii() << '\n';
}

} // namespace aurora
