#include "socket.hh"

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim_error.hh"

namespace aurora::util
{

namespace
{

[[noreturn]] void
raiseErrno(const char *what, const std::string &detail)
{
    raiseError(SimErrorCode::BadWire, what, " '", detail,
               "': ", std::strerror(errno));
}

/** Fill a sockaddr_un, rejecting paths the kernel cannot hold. */
sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        raiseError(SimErrorCode::BadWire, "socket path '", path,
                   "' is empty or longer than ",
                   sizeof(addr.sun_path) - 1, " bytes");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

void
Fd::reset()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

Fd
listenUnix(const std::string &path, int backlog)
{
    const sockaddr_un addr = unixAddress(path);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        raiseErrno("cannot create socket for", path);
    // A previous daemon that died (or was SIGKILLed) leaves its
    // socket file behind; binding over it is the normal restart path.
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        raiseErrno("cannot bind socket", path);
    if (::listen(fd.get(), backlog) != 0)
        raiseErrno("cannot listen on socket", path);
    setNonBlocking(fd.get());
    return fd;
}

Fd
connectUnix(const std::string &path)
{
    const sockaddr_un addr = unixAddress(path);
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        raiseErrno("cannot create socket for", path);
    if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        raiseError(SimErrorCode::BadWire, "cannot connect to '", path,
                   "': ", std::strerror(errno),
                   " (is aurora_serve running?)");
    return fd;
}

Fd
acceptConn(int listen_fd)
{
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0)
        return Fd();
    Fd conn(fd);
    setNonBlocking(conn.get());
    return conn;
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        raiseError(SimErrorCode::BadWire,
                   "cannot set O_NONBLOCK on fd ", fd, ": ",
                   std::strerror(errno));
}

long
readAvailable(int fd, std::string &buf)
{
    char chunk[16 * 1024];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
        buf.append(chunk, static_cast<std::size_t>(n));
        return static_cast<long>(n);
    }
    if (n == 0)
        return 0;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        return -1;
    // ECONNRESET and friends: the peer is gone, same cleanup as a
    // clean close.
    return 0;
}

bool
writeSome(int fd, const std::string &buf, std::size_t &pos)
{
    while (pos < buf.size()) {
        const ssize_t n = ::send(fd, buf.data() + pos, buf.size() - pos,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            pos += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true; // short write; caller re-arms POLLOUT
        if (n < 0 && errno == EINTR)
            continue;
        return false; // EPIPE / reset: peer is gone
    }
    return true;
}

void
writeAll(int fd, const std::string &bytes)
{
    std::size_t pos = 0;
    while (pos < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + pos,
                                 bytes.size() - pos, MSG_NOSIGNAL);
        if (n > 0) {
            pos += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Blocking caller on a non-blocking fd: wait for space.
            pollfd pfd{fd, POLLOUT, 0};
            ::poll(&pfd, 1, -1);
            continue;
        }
        raiseError(SimErrorCode::BadWire, "write to fd ", fd,
                   " failed: ", std::strerror(errno));
    }
}

std::size_t
readBlocking(int fd, std::string &buf, std::size_t max,
             std::uint64_t timeout_ms)
{
    // One deadline for the whole call: EINTR/EAGAIN retries poll()
    // with the time *remaining*, so a peer trickling bytes cannot
    // stretch a timed read indefinitely.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    for (;;) {
        int wait = -1;
        if (timeout_ms != 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (left <= 0)
                raiseError(SimErrorCode::BadWire, "timed out after ",
                           timeout_ms, " ms waiting for the server");
            wait = static_cast<int>(left);
        }
        pollfd pfd{fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, wait);
        if (rc == 0)
            raiseError(SimErrorCode::BadWire, "timed out after ",
                       timeout_ms, " ms waiting for the server");
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            raiseError(SimErrorCode::BadWire,
                       "poll failed: ", std::strerror(errno));
        }
        std::string chunk(max, '\0');
        const ssize_t n = ::read(fd, chunk.data(), max);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            raiseError(SimErrorCode::BadWire,
                       "read failed: ", std::strerror(errno));
        }
        buf.append(chunk.data(), static_cast<std::size_t>(n));
        return static_cast<std::size_t>(n);
    }
}

WakePipe::WakePipe()
{
    int fds[2];
    if (::pipe(fds) != 0)
        raiseError(SimErrorCode::BadWire,
                   "cannot create wake pipe: ", std::strerror(errno));
    read_ = Fd(fds[0]);
    write_ = Fd(fds[1]);
    setNonBlocking(read_.get());
    setNonBlocking(write_.get());
}

void
WakePipe::notify() const
{
    const char byte = 1;
    // Async-signal-safe; EAGAIN means a wake is already pending,
    // which is exactly the coalescing we want.
    [[maybe_unused]] const ssize_t n =
        ::write(write_.get(), &byte, 1);
}

void
WakePipe::drain() const
{
    char sink[64];
    while (::read(read_.get(), sink, sizeof(sink)) > 0) {
    }
}

} // namespace aurora::util
