/**
 * @file
 * Structured error model for recoverable failures.
 *
 * The design-space sweeps run thousands of (machine, workload) points,
 * many of them degenerate by construction. A bad point must be
 * *reportable* — caught, classified, and attached to its grid slot —
 * rather than killing the process the way AURORA_FATAL's exit(1) does.
 * Every recoverable user-error path (configuration parsing, trace IO,
 * CLI arguments, watchdog trips) therefore throws SimError with a
 * machine-readable code; AURORA_PANIC remains reserved for genuine
 * simulator bugs, where aborting with the state intact is the right
 * call.
 */

#ifndef AURORA_UTIL_SIM_ERROR_HH
#define AURORA_UTIL_SIM_ERROR_HH

#include <stdexcept>
#include <string>
#include <utility>

#include "logging.hh"

namespace aurora::util
{

/** Machine-readable classification of a recoverable failure. */
enum class SimErrorCode
{
    /** Invalid machine configuration or CLI/spec parse error. */
    BadConfig,
    /** Unreadable, corrupt, or truncated trace file. */
    BadTrace,
    /** Watchdog: no instruction retired for the configured window. */
    NoForwardProgress,
    /** Watchdog: the hard cycle budget was exhausted. */
    CycleBudgetExceeded,
    /** Watchdog: the per-job wall-clock deadline expired. */
    Timeout,
    /** Corrupt, mismatched, or unreadable sweep journal. */
    BadJournal,
    /** Unclassified failure escaping a sweep job. */
    Internal,
    /** Job cancelled before execution (client cancel / drain). */
    Cancelled,
    /** Service admission refused: quota or queue depth exhausted. */
    Overloaded,
    /** Socket transport or wire-protocol failure (aurora_serve). */
    BadWire,
};

/** Stable display name of @p code ("BadConfig", ...). */
const char *errorCodeName(SimErrorCode code);

/**
 * A recoverable simulation error. what() carries "[Code] message" so a
 * one-line diagnostic needs no further formatting; message() is the
 * bare text for callers that render the code themselves.
 */
class SimError : public std::runtime_error
{
  public:
    SimError(SimErrorCode code, std::string message);

    SimErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

  private:
    SimErrorCode code_;
    std::string message_;
};

/** Throw a SimError built from streamable message parts. */
template <typename... Args>
[[noreturn]] inline void
raiseError(SimErrorCode code, Args &&...args)
{
    throw SimError(code, detail::concat(std::forward<Args>(args)...));
}

} // namespace aurora::util

#endif // AURORA_UTIL_SIM_ERROR_HH
