/**
 * @file
 * Unix-domain socket and poll-loop helpers (the aurora_serve
 * transport substrate).
 *
 * The sweep service runs over a local SOCK_STREAM socket: one
 * resident daemon, many short-lived clients on the same host. This
 * module wraps the handful of POSIX calls the server and client need
 * — bind/listen/accept, connect, non-blocking reads and buffered
 * writes, and a self-pipe for waking a poll() loop from worker
 * threads or signal handlers — behind RAII and structured SimError
 * (BadWire) reporting, so the protocol layer (serve/wire) never
 * touches errno.
 *
 * Everything here is transport only: no framing, no message types.
 * Byte interpretation belongs to serve/wire.
 */

#ifndef AURORA_UTIL_SOCKET_HH
#define AURORA_UTIL_SOCKET_HH

#include <cstddef>
#include <string>

namespace aurora::util
{

/** Owning file descriptor: closes on destruction, move-only. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;
    Fd(Fd &&other) noexcept : fd_(other.release()) {}
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Give up ownership without closing. */
    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /** Close now (idempotent). */
    void reset();

  private:
    int fd_ = -1;
};

/**
 * Create, bind, and listen on a Unix-domain stream socket at
 * @p path. A stale socket file from a previous (possibly SIGKILLed)
 * daemon is unlinked first — the spool journals, not the socket,
 * carry the durable state. Throws SimError(BadWire) on failure.
 */
Fd listenUnix(const std::string &path, int backlog = 64);

/**
 * Connect to the Unix-domain socket at @p path (blocking). Throws
 * SimError(BadWire) when the socket is absent or refuses — the
 * caller's cue that no daemon is resident.
 */
Fd connectUnix(const std::string &path);

/** Accept one pending connection; invalid Fd when none is ready. */
Fd acceptConn(int listen_fd);

/** Switch @p fd to non-blocking mode (throws BadWire on failure). */
void setNonBlocking(int fd);

/**
 * Non-blocking read of whatever is available into @p buf (appended).
 * Returns the byte count read, 0 when the peer closed, or -1 when
 * the read would block. Transport errors (ECONNRESET, ...) report as
 * peer-closed: to a server a reset client and a departed client need
 * the same cleanup.
 */
long readAvailable(int fd, std::string &buf);

/**
 * Non-blocking write of bytes [pos, buf.size()) to @p fd, advancing
 * @p pos past what was accepted. Returns false when the peer is gone
 * (EPIPE/reset); true otherwise, including short writes — the caller
 * re-arms POLLOUT while pos < buf.size().
 */
bool writeSome(int fd, const std::string &buf, std::size_t &pos);

/** Blocking write of all of @p bytes; throws BadWire on failure. */
void writeAll(int fd, const std::string &bytes);

/**
 * Blocking read of up to @p max bytes appended to @p buf, waiting at
 * most @p timeout_ms (0 = forever). Returns bytes read; 0 means the
 * peer closed. Throws SimError(BadWire) on transport errors and on
 * timeout — a stalled daemon must not hang a client forever.
 */
std::size_t readBlocking(int fd, std::string &buf, std::size_t max,
                         std::uint64_t timeout_ms);

/**
 * Self-pipe for waking a poll() loop: read end joins the poll set,
 * writers (worker threads, signal handlers) call notify(). Both ends
 * are non-blocking; notify() from a signal handler is async-safe
 * (a bare write()).
 */
class WakePipe
{
  public:
    WakePipe();

    int readFd() const { return read_.get(); }

    /** Wake the poller (coalesces; safe from signal handlers). */
    void notify() const;

    /** Drain pending wake bytes after poll() returns. */
    void drain() const;

  private:
    Fd read_;
    Fd write_;
};

} // namespace aurora::util

#endif // AURORA_UTIL_SOCKET_HH
