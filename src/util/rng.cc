#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace aurora
{

namespace
{

/** splitmix64 step, used only for seed expansion. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    for (auto &word : s_)
        word = splitmix64(seed);
    // A pathological all-zero state cannot occur: splitmix64 of any
    // sequence yields at least one non-zero word with overwhelming
    // probability, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::uniform(std::uint64_t bound)
{
    AURORA_ASSERT(bound > 0, "uniform() bound must be positive");
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    AURORA_ASSERT(lo <= hi, "range() requires lo <= hi");
    return lo + uniform(hi - lo + 1);
}

double
Rng::uniformReal()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    AURORA_ASSERT(p > 0.0 && p <= 1.0, "geometric() needs 0 < p <= 1");
    if (p >= 1.0)
        return 1;
    const double u = uniformReal();
    const double trials = std::floor(std::log1p(-u) / std::log1p(-p));
    return static_cast<std::uint64_t>(trials) + 1;
}

std::size_t
Rng::weighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        AURORA_ASSERT(w >= 0.0, "weighted() weights must be >= 0");
        total += w;
    }
    AURORA_ASSERT(total > 0.0, "weighted() needs a positive total weight");
    double pick = uniformReal() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        pick -= weights[i];
        if (pick < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    AURORA_ASSERT(n > 0, "zipf() needs n > 0");
    // Inverse-CDF approximation via the continuous bounding integral;
    // accurate enough for workload skew and O(1) per sample.
    if (s <= 0.0)
        return uniform(n);
    const double u = uniformReal();
    double value;
    if (s == 1.0) {
        value = std::exp(u * std::log(static_cast<double>(n) + 1.0));
    } else {
        const double t =
            std::pow(static_cast<double>(n) + 1.0, 1.0 - s);
        value = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    auto idx = static_cast<std::uint64_t>(value);
    if (idx >= 1)
        idx -= 1;
    return idx < n ? idx : n - 1;
}

} // namespace aurora
