/**
 * @file
 * Error and status reporting helpers.
 *
 * Follows the gem5 convention: panic() for conditions that indicate a
 * bug in the simulator itself (aborts, so a debugger or core dump can
 * capture the state); fatal() for user errors such as an inconsistent
 * configuration (clean exit with an error code); warn()/inform() for
 * non-fatal status messages.
 */

#ifndef AURORA_UTIL_LOGGING_HH
#define AURORA_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace aurora
{

/** Internal: terminate via abort() with a formatted message. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Internal: terminate via exit(1) with a formatted message. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr; execution continues. */
void warn(const std::string &msg);

/** Print an informational message to stderr; execution continues. */
void inform(const std::string &msg);

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    // void-cast: with an empty pack the fold collapses to plain `os`,
    // which -Wunused-value would otherwise flag.
    static_cast<void>((os << ... << std::forward<Args>(args)));
    return os.str();
}

} // namespace detail

} // namespace aurora

/** Simulator-bug assertion: message then abort(). */
#define AURORA_PANIC(...) \
    ::aurora::panicImpl(__FILE__, __LINE__, \
                        ::aurora::detail::concat(__VA_ARGS__))

/** User-error termination: message then exit(1). */
#define AURORA_FATAL(...) \
    ::aurora::fatalImpl(__FILE__, __LINE__, \
                        ::aurora::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG builds. */
#define AURORA_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            AURORA_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // AURORA_UTIL_LOGGING_HH
