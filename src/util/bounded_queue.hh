/**
 * @file
 * Fixed-capacity FIFO used to model hardware queues (FPU decoupling
 * queues, BIU transmit/receive queues, fetch buffers).
 *
 * Unlike std::queue, capacity is part of the model: push on a full
 * queue is a simulator bug (the pipeline must stall instead), so it
 * panics rather than growing.
 */

#ifndef AURORA_UTIL_BOUNDED_QUEUE_HH
#define AURORA_UTIL_BOUNDED_QUEUE_HH

#include <cstddef>
#include <vector>

#include "logging.hh"

namespace aurora
{

/** Circular-buffer FIFO with a hard capacity. */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity maximum number of buffered entries; must be >0. */
    explicit BoundedQueue(std::size_t capacity)
        : buf_(capacity)
    {
        AURORA_ASSERT(capacity > 0, "queue capacity must be positive");
    }

    std::size_t capacity() const { return buf_.size(); }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == buf_.size(); }
    /** Free slots remaining. */
    std::size_t space() const { return buf_.size() - count_; }

    /** Enqueue; the queue must not be full. */
    void
    push(T value)
    {
        AURORA_ASSERT(!full(), "push on a full bounded queue");
        buf_[tail_] = std::move(value);
        tail_ = advance(tail_);
        ++count_;
    }

    /** Oldest entry; the queue must not be empty. */
    T &
    front()
    {
        AURORA_ASSERT(!empty(), "front of an empty bounded queue");
        return buf_[head_];
    }

    const T &
    front() const
    {
        AURORA_ASSERT(!empty(), "front of an empty bounded queue");
        return buf_[head_];
    }

    /**
     * Entry at FIFO position @p idx (0 == front). Used by the FPU dual
     * issue logic, which needs to look one below the head of the
     * instruction queue.
     */
    T &
    at(std::size_t idx)
    {
        AURORA_ASSERT(idx < count_, "bounded queue index out of range");
        return buf_[(head_ + idx) % buf_.size()];
    }

    const T &
    at(std::size_t idx) const
    {
        AURORA_ASSERT(idx < count_, "bounded queue index out of range");
        return buf_[(head_ + idx) % buf_.size()];
    }

    /** Dequeue and return the oldest entry. */
    T
    pop()
    {
        AURORA_ASSERT(!empty(), "pop of an empty bounded queue");
        T value = std::move(buf_[head_]);
        head_ = advance(head_);
        --count_;
        return value;
    }

    /** Discard all entries. */
    void
    clear()
    {
        head_ = tail_ = 0;
        count_ = 0;
    }

  private:
    std::size_t
    advance(std::size_t i) const
    {
        return (i + 1) % buf_.size();
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
    std::size_t count_ = 0;
};

} // namespace aurora

#endif // AURORA_UTIL_BOUNDED_QUEUE_HH
