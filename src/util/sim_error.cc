#include "sim_error.hh"

namespace aurora::util
{

const char *
errorCodeName(SimErrorCode code)
{
    switch (code) {
      case SimErrorCode::BadConfig: return "BadConfig";
      case SimErrorCode::BadTrace: return "BadTrace";
      case SimErrorCode::NoForwardProgress: return "NoForwardProgress";
      case SimErrorCode::CycleBudgetExceeded:
        return "CycleBudgetExceeded";
      case SimErrorCode::Timeout: return "Timeout";
      case SimErrorCode::BadJournal: return "BadJournal";
      case SimErrorCode::Internal: return "Internal";
      case SimErrorCode::Cancelled: return "Cancelled";
      case SimErrorCode::Overloaded: return "Overloaded";
      case SimErrorCode::BadWire: return "BadWire";
    }
    return "Unknown";
}

SimError::SimError(SimErrorCode code, std::string message)
    : std::runtime_error(
          detail::concat("[", errorCodeName(code), "] ", message)),
      code_(code), message_(std::move(message))
{
}

} // namespace aurora::util
