/**
 * @file
 * Strict environment-variable parsing.
 *
 * Experiment knobs arrive through environment variables
 * (AURORA_BENCH_INSTS, AURORA_JOBS, ...). A silently misparsed value
 * is worse than a fatal one — strtoull("2OOOOO") yielding 2 would
 * quietly turn a benchmark into a no-op — so every lookup goes
 * through parseCount(), which accepts only a complete non-negative
 * decimal number and reports anything else as absent.
 */

#ifndef AURORA_UTIL_ENV_HH
#define AURORA_UTIL_ENV_HH

#include <optional>
#include <string>

#include "types.hh"

namespace aurora
{

/**
 * Parse @p text as a non-negative decimal count. Leading/trailing
 * whitespace is permitted; anything else — empty string, signs,
 * trailing garbage, hex, overflow — yields nullopt.
 */
std::optional<Count> parseCount(const std::string &text);

/**
 * Read environment variable @p name as a count.
 *
 * Returns @p fallback when the variable is unset. A set-but-malformed
 * value, or a parsed value below @p min, emits a warning and also
 * returns @p fallback (never a silently clamped or zero result).
 */
Count envCount(const char *name, Count fallback, Count min = 1);

/**
 * Read environment variable @p name as a boolean flag.
 *
 * Accepted values: "1"/"on"/"true" and "0"/"off"/"false". Unset
 * returns @p fallback; a set-but-unrecognized value warns and also
 * returns @p fallback. The variable is read on every call (never
 * cached) so tests may toggle flags with setenv().
 */
bool envFlag(const char *name, bool fallback);

/**
 * Read environment variable @p name as a string. Unset or empty
 * returns nullopt — an empty value cannot be distinguished from a
 * forgotten `VAR=` in a launcher script, so both are "absent".
 */
std::optional<std::string> envString(const char *name);

} // namespace aurora

#endif // AURORA_UTIL_ENV_HH
