#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace aurora
{

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (n_ == 0)
        return 0;
    p = std::min(std::max(p, 0.0), 1.0);
    // The sample rank is computed in integer space so the result is
    // bit-stable across platforms: ceil(p * n) without going through
    // a rounded double.
    const auto rank = static_cast<Count>(
        std::ceil(p * static_cast<double>(n_)));
    const Count needed = std::max<Count>(rank, 1);
    Count seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= needed)
            return i;
    }
    return max_;
}

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace aurora
