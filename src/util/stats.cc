#include "stats.hh"

#include <cmath>
#include <cstdio>

namespace aurora
{

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

std::string
formatFixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace aurora
