/**
 * @file
 * CRC-framed message transport shared by every Aurora socket protocol.
 *
 * A frame is the journal's record framing byte-for-byte
 * (util/record_io layout) under a protocol-specific magic:
 *
 *     [u32 magic] [u32 payload_len] [u32 crc32(payload)] [payload]
 *
 * all little-endian. The CRC means a torn or bit-flipped frame is
 * *detected*, never misparsed — the same guarantee the sweep journal
 * gives on disk, extended to the socket. Each protocol picks a
 * distinct magic (serve speaks 'AWP1', the shard fabric 'ASW1') so a
 * stream from the wrong peer — or a journal file pushed down a
 * socket — is rejected at the first frame instead of half-parsed.
 */

#ifndef AURORA_UTIL_FRAME_HH
#define AURORA_UTIL_FRAME_HH

#include <cstdint>
#include <optional>
#include <string>

namespace aurora::util
{

/** Bytes of the fixed frame header (magic + length + CRC). */
inline constexpr std::size_t FRAME_HEADER_BYTES = 12;

/** Wrap @p payload in a frame under @p magic. */
std::string frame(std::uint32_t magic, const std::string &payload);

/** What FrameDecoder::next() found. */
enum class FrameStatus
{
    NeedMore, ///< buffer holds only a partial frame; feed more bytes
    Ok,       ///< a complete, CRC-valid payload was extracted
    Corrupt,  ///< bad magic, implausible length, or CRC mismatch
};

/**
 * Incremental frame extractor for a non-blocking socket: feed() the
 * bytes read() hands you, then drain complete payloads with next().
 * Corrupt is terminal for the connection — after a framing error the
 * stream offset is untrustworthy, so the caller must drop the peer,
 * exactly as a mid-file corrupt journal refuses to resume.
 */
class FrameDecoder
{
  public:
    /** Decode frames carrying @p magic; anything else is Corrupt. */
    explicit FrameDecoder(std::uint32_t magic) : magic_(magic) {}

    /** Append raw socket bytes to the decode buffer. */
    void feed(const char *data, std::size_t len);
    void feed(const std::string &bytes);

    /** Extract the next complete payload, if any. */
    FrameStatus next(std::string &payload);

    /** True when no partial frame is pending — a peer that closes
     *  here closed cleanly, not mid-message. */
    bool atFrameBoundary() const { return pos_ == buf_.size(); }

    /** Bytes buffered but not yet consumed (tests, caps). */
    std::size_t pendingBytes() const { return buf_.size() - pos_; }

  private:
    std::uint32_t magic_;
    std::string buf_;
    std::size_t pos_ = 0;
};

/** Blocking send of one framed payload. */
void sendFrame(int fd, std::uint32_t magic, const std::string &payload);

/**
 * Blocking receive of the next framed payload, reading through
 * @p decoder. Returns std::nullopt on a clean peer close at a frame
 * boundary; throws SimError(BadWire) on corruption, on a close
 * mid-frame, or after @p timeout_ms with no complete frame
 * (0 = wait forever).
 */
std::optional<std::string> recvFrame(int fd, FrameDecoder &decoder,
                                     std::uint64_t timeout_ms = 0);

} // namespace aurora::util

#endif // AURORA_UTIL_FRAME_HH
