/**
 * @file
 * ASCII / CSV table formatting used by the benchmark harness to print
 * paper-style tables and figure data series.
 */

#ifndef AURORA_UTIL_TABLE_HH
#define AURORA_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace aurora
{

/**
 * Column-aligned text table. Cells are strings; numeric convenience
 * overloads format with a fixed number of decimals. Rendering pads
 * every column to its widest cell and right-aligns numeric cells.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Start a new row; subsequent cell() calls append to it. */
    Table &row();

    /** Append a text cell to the current row. */
    Table &cell(const std::string &text);

    /** Append a numeric cell formatted with @p decimals places. */
    Table &cell(double value, int decimals = 2);

    /** Append an integer cell. */
    Table &cell(std::uint64_t value);

    /** Number of data rows so far. */
    std::size_t numRows() const { return rows_.size(); }

    /** Render as an aligned ASCII table with a header separator. */
    std::string ascii() const;

    /** Render as CSV (no quoting needed: cells never hold commas). */
    std::string csv() const;

    /** Print the ASCII rendering to @p os with an optional title. */
    void print(std::ostream &os, const std::string &title = "") const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace aurora

#endif // AURORA_UTIL_TABLE_HH
