/**
 * @file
 * Figure 8: the full cost-performance scatter for espresso at
 * 17-cycle latency. Four classes of systems are swept: single-issue
 * systems of the three cache sizes, and dual-issue systems with 1K,
 * 2K and 4K instruction caches crossed with write-cache / reorder
 * buffer / MSHR / prefetch variations. The lettered points of §5.6
 * (A: single-MSHR outliers, B: large-model plateau, C/D: prefetch
 * on/off, E: the recommended machine) are tagged in the output.
 */

#include "bench_common.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

/** One scatter point. */
void
emit(Table &t, const MachineConfig &m, const std::string &tag)
{
    const auto r = simulate(m, trace::espresso(),
                            aurora::bench::runInsts());
    t.row()
        .cell(tag.empty() ? m.name : tag + " " + m.name)
        .cell(std::uint64_t{m.issue_width})
        .cell(std::uint64_t{m.ifu.icache_bytes / 1024})
        .cell(std::uint64_t{m.write_cache.lines})
        .cell(std::uint64_t{m.rob_entries})
        .cell(std::uint64_t{m.lsu.mshr_entries})
        .cell(m.prefetch.enabled ? "y" : "n")
        .cell(m.rbeCost(), 0)
        .cell(r.cpi(), 3);
}

} // namespace

int
main()
{
    using namespace aurora;
    using namespace aurora::core;

    bench::banner("Figure 8 - espresso full cost-performance scatter");

    Table t({"point", "issue", "I$KB", "WC", "ROB", "MSHR", "PF",
             "Cost (RBE)", "CPI"});

    // Squares: single issue systems of the three cache sizes.
    for (const auto &base : studyModels())
        emit(t, base.withIssueWidth(1).withName(base.name + "-1"),
             "sq");

    // Diamonds / triangles / circles: dual issue with 1K/2K/4K
    // I-caches and a spread of memory resources.
    for (const auto &base : studyModels()) {
        // the standard point
        emit(t, base, "");
        // A: blocking cache (single MSHR)
        emit(t, base.withMshrs(1).withName(base.name + "-A"), "A");
        // D/C: prefetch present vs removed
        emit(t, base.withPrefetch(false).withName(base.name + "-C"),
             "C");
        // richer memory resources at the same cache size
        auto rich = base;
        rich.write_cache.lines = 8;
        rich.rob_entries = 8;
        rich.lsu.mshr_entries = 4;
        emit(t, rich.withName(base.name + "-rich"), "");
        // poorer
        auto poor = base;
        poor.write_cache.lines = 2;
        poor.rob_entries = 2;
        emit(t, poor.withName(base.name + "-poor"), "");
    }

    // B: the large-model plateau (extra resources, little gain).
    auto plateau = largeModel();
    plateau.write_cache.lines = 16;
    plateau.rob_entries = 16;
    plateau.lsu.mshr_entries = 8;
    plateau.prefetch.num_buffers = 16;
    emit(t, plateau.withName("large-B"), "B");

    // E: the recommendation — baseline + 4K I-cache + 4 MSHRs.
    emit(t, recommendedModel(), "E");

    t.print(std::cout, "Figure 8 data (espresso, 17-cycle latency)");
    std::cout
        << "(paper: A-points lie well above equal-cost systems; "
           "B-points plateau; C->D shows the prefetch gain; E nearly "
           "matches the large model at much lower cost)\n";
    return 0;
}
