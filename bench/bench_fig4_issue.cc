/**
 * @file
 * Figure 4: dual and single issue performance vs. cost for the three
 * machine models at 17- and 35-cycle secondary latencies (12
 * configurations). Prints, per configuration, the RBE cost and the
 * min/average/max CPI over the SPECint92 suite — the quantities the
 * figure plots as capped vertical bars.
 */

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("Figure 4 - issue width vs cost vs latency");

    const auto suite = tr::integerSuite();
    for (Cycle latency : {Cycle{17}, Cycle{35}}) {
        Table t({"Model", "Issue", "Cost (RBE)", "CPI min",
                 "CPI avg", "CPI max"});
        for (const auto &base : studyModels()) {
            for (unsigned width : {1u, 2u}) {
                const auto m =
                    base.withIssueWidth(width).withLatency(latency);
                const auto res =
                    runSuite(m, suite, bench::runInsts());
                const auto acc = res.cpiStats();
                t.row()
                    .cell(m.name)
                    .cell(std::uint64_t{width})
                    .cell(m.rbeCost(), 0)
                    .cell(acc.min(), 3)
                    .cell(acc.mean(), 3)
                    .cell(acc.max(), 3);
            }
        }
        t.print(std::cout,
                "Figure 4 data, " + std::to_string(latency) +
                    "-cycle secondary latency");
    }

    // The headline §5 statistics for the baseline model.
    const auto base = runSuite(baselineModel(), suite,
                               bench::runInsts());
    Accumulator ic, dc;
    for (const auto &r : base.runs) {
        ic.add(r.icache_hit_pct);
        dc.add(r.dcache_hit_pct);
    }
    std::cout << "Baseline I-cache hit rate: "
              << formatFixed(ic.mean(), 1)
              << "%  (paper: 96.5%)\nBaseline D-cache hit rate: "
              << formatFixed(dc.mean(), 1) << "%  (paper: 95.4%)\n";
    return 0;
}
