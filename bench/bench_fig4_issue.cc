/**
 * @file
 * Figure 4: dual and single issue performance vs. cost for the three
 * machine models at 17- and 35-cycle secondary latencies (12
 * configurations). Prints, per configuration, the RBE cost and the
 * min/average/max CPI over the SPECint92 suite — the quantities the
 * figure plots as capped vertical bars. The whole 13-config × 6-bench
 * grid is submitted to the sweep engine as one batch.
 */

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("Figure 4 - issue width vs cost vs latency");

    const auto suite = tr::integerSuite();
    const Cycle latencies[] = {17, 35};

    // One flat grid: (latency × model × width) configs, suite each.
    harness::SweepRunner runner;
    std::vector<harness::SweepJob> grid;
    std::vector<MachineConfig> configs;
    for (Cycle latency : latencies) {
        for (const auto &base : studyModels()) {
            for (unsigned width : {1u, 2u}) {
                const auto m =
                    base.withIssueWidth(width).withLatency(latency);
                configs.push_back(m);
                for (const auto &job :
                     harness::suiteJobs(m, suite, bench::runInsts()))
                    grid.push_back(job);
            }
        }
    }
    // Headline §5 statistics come from the unmodified baseline.
    const std::size_t headline_begin = grid.size();
    for (const auto &job : harness::suiteJobs(
             baselineModel(), suite, bench::runInsts()))
        grid.push_back(job);

    const auto results = runner.run(grid);

    std::size_t config_idx = 0;
    for (Cycle latency : latencies) {
        Table t({"Model", "Issue", "Cost (RBE)", "CPI min",
                 "CPI avg", "CPI max"});
        for (std::size_t mi = 0; mi < 3; ++mi) {
            for (unsigned width : {1u, 2u}) {
                const auto &m = configs[config_idx];
                Accumulator acc;
                for (std::size_t b = 0; b < suite.size(); ++b)
                    acc.add(results[config_idx * suite.size() + b]
                                .cpi());
                t.row()
                    .cell(m.name)
                    .cell(std::uint64_t{width})
                    .cell(m.rbeCost(), 0)
                    .cell(acc.min(), 3)
                    .cell(acc.mean(), 3)
                    .cell(acc.max(), 3);
                ++config_idx;
            }
        }
        t.print(std::cout,
                "Figure 4 data, " + std::to_string(latency) +
                    "-cycle secondary latency");
    }

    Accumulator ic, dc;
    for (std::size_t b = 0; b < suite.size(); ++b) {
        const auto &r = results[headline_begin + b];
        ic.add(r.icache_hit_pct);
        dc.add(r.dcache_hit_pct);
    }
    std::cout << "Baseline I-cache hit rate: "
              << formatFixed(ic.mean(), 1)
              << "%  (paper: 96.5%)\nBaseline D-cache hit rate: "
              << formatFixed(dc.mean(), 1) << "%  (paper: 95.4%)\n";

    bench::sweepFooter(runner);
    return 0;
}
