/**
 * @file
 * Extension: the §1 design goals.
 *
 * "The goals include integer performance of 200 SPECint and floating
 * point performance of 300 SPECfp" at a 300 MHz clock. SPEC92
 * ratings are VAX-11/780-relative wall-clock ratios; with the
 * common-era approximation SPECint92 ≈ native MIPS (the 780 is a
 * ~1-MIPS, CPI≈10 machine), a CPI measurement converts directly:
 *
 *     rating ≈ clock_MHz / CPI
 *
 * This bench asks: at the simulated CPIs, does the Aurora III meet
 * its stated goals, and at what clock would it?
 */

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("extension - the S1 performance goals");

    const double clock_mhz = 300.0;

    Table t({"model", "suite", "CPI avg", "est. rating @300MHz",
             "goal", "clock needed for goal"});
    for (const auto &m : {baselineModel(), largeModel()}) {
        const double int_cpi =
            runSuite(m, tr::integerSuite(), bench::runInsts())
                .avgCpi();
        Accumulator fp;
        for (const auto &p : tr::floatSuite())
            fp.add(simulate(m, p, bench::runInsts()).cpi());

        const double int_rating = clock_mhz / int_cpi;
        const double fp_rating = clock_mhz / fp.mean();
        t.row()
            .cell(m.name)
            .cell("SPECint92")
            .cell(int_cpi, 3)
            .cell(int_rating, 0)
            .cell(std::uint64_t{200})
            .cell(200.0 * int_cpi, 0);
        t.row()
            .cell(m.name)
            .cell("SPECfp92")
            .cell(fp.mean(), 3)
            .cell(fp_rating, 0)
            .cell(std::uint64_t{300})
            .cell(300.0 * fp.mean(), 0);
    }
    t.print(std::cout, "Design-goal check (rating ~ MHz / CPI)");
    std::cout
        << "(the conversion assumes SPEC92 rating ~ native MIPS; "
           "compiler quality, OS effects and the 780 reference make "
           "this a ~25% band. The shape conclusion: the integer goal "
           "needs CPI <= 1.5 at 300 MHz — achievable by the large "
           "model — while the FP goal needs CPI <= 1.0, which is why "
           "the paper pushes FPU dual issue and short unit "
           "latencies.)\n";
    return 0;
}
