/**
 * @file
 * Table 6: CPI figures for the three FPU issue policies over the
 * SPECfp92 suite (§5.8).
 */

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("Table 6 - FPU issue policies");

    Table t({"Benchmark", "In Order Issue and Completion",
             "Single Issue", "Dual Issue"});
    Accumulator a0, a1, a2;
    for (const auto &p : tr::floatSuite()) {
        double cpi[3];
        int idx = 0;
        for (auto pol : {fpu::IssuePolicy::InOrderComplete,
                         fpu::IssuePolicy::OutOfOrderSingle,
                         fpu::IssuePolicy::OutOfOrderDual}) {
            auto m = baselineModel();
            m.fpu.policy = pol;
            cpi[idx++] = simulate(m, p, bench::runInsts()).cpi();
        }
        a0.add(cpi[0]);
        a1.add(cpi[1]);
        a2.add(cpi[2]);
        t.row()
            .cell(p.name)
            .cell(cpi[0], 3)
            .cell(cpi[1], 3)
            .cell(cpi[2], 3);
    }
    t.row()
        .cell("Average")
        .cell(a0.mean(), 3)
        .cell(a1.mean(), 3)
        .cell(a2.mean(), 3);
    t.print(std::cout, "Table 6: CPI for Three FPU Issue Policies");

    std::cout << "single-issue gain over in-order: "
              << formatFixed(100.0 * (a0.mean() - a1.mean()) /
                                 a0.mean(),
                             1)
              << "%  (paper: 12%)\n"
              << "dual-issue gain over in-order:   "
              << formatFixed(100.0 * (a0.mean() - a2.mean()) /
                                 a0.mean(),
                             1)
              << "%  (paper: 21%)\n"
              << "(paper averages: 1.577 / 1.4012 / 1.248; alvinn and "
                 "spice2g6 are insensitive, nasa7/hydro2d/mdljdp2 "
                 "gain the most)\n";
    return 0;
}
