/**
 * @file
 * Extension: primary cache size sweeps.
 *
 * §5.1 validates the base model's hit rates against Gee et al.'s
 * SPEC92 cache study [5]. This bench sweeps the on-chip I-cache
 * (512 B - 16 KB) and the external D-cache (8 - 256 KB) and prints
 * the hit-rate and CPI curves, showing the knee the Table 1 models
 * straddle. Both size axes run through one sweep batch.
 */

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("extension - cache size sweeps");

    const auto suite = tr::integerSuite();
    const std::size_t nb = suite.size();

    harness::SweepRunner runner;
    std::vector<harness::SweepJob> grid;
    const auto add_config = [&](const MachineConfig &m) {
        const std::size_t begin = grid.size();
        for (const auto &job :
             harness::suiteJobs(m, suite, bench::runInsts()))
            grid.push_back(job);
        return begin;
    };

    std::vector<std::pair<std::uint32_t, std::size_t>> ic_slices;
    for (std::uint32_t size = 512; size <= 16 * 1024; size *= 2) {
        auto m = baselineModel();
        m.ifu.icache_bytes = size;
        ic_slices.emplace_back(size, add_config(m));
    }
    std::vector<std::pair<std::uint32_t, std::size_t>> dc_slices;
    for (std::uint32_t size = 8 * 1024; size <= 256 * 1024;
         size *= 2) {
        auto m = baselineModel();
        m.lsu.dcache_bytes = size;
        dc_slices.emplace_back(size, add_config(m));
    }

    const auto results = runner.run(grid);

    Table ic({"I-cache", "hit %", "CPI avg", "RBE cost"});
    for (const auto &[size, begin] : ic_slices) {
        auto m = baselineModel();
        m.ifu.icache_bytes = size;
        Accumulator hit;
        for (std::size_t b = 0; b < nb; ++b)
            hit.add(results[begin + b].icache_hit_pct);
        ic.row()
            .cell(std::to_string(size / 1024) + "." +
                  std::to_string((size % 1024) * 10 / 1024) + " KB")
            .cell(hit.mean(), 2)
            .cell(bench::meanCpi(results, begin, nb), 3)
            .cell(m.rbeCost(), 0);
    }
    ic.print(std::cout, "on-chip instruction cache sweep");

    Table dc({"D-cache", "hit %", "CPI avg"});
    for (const auto &[size, begin] : dc_slices) {
        Accumulator hit;
        for (std::size_t b = 0; b < nb; ++b)
            hit.add(results[begin + b].dcache_hit_pct);
        dc.row()
            .cell(std::to_string(size / 1024) + " KB")
            .cell(hit.mean(), 2)
            .cell(bench::meanCpi(results, begin, nb), 3);
    }
    dc.print(std::cout,
             "external data cache sweep (not priced: off-chip SRAM)");
    std::cout << "(paper: base model I-cache hit 96.5% at 2 KB, "
                 "D-cache 95.4% at 32 KB, in agreement with Gee et "
                 "al. [5])\n";

    bench::sweepFooter(runner);
    return 0;
}
