/**
 * @file
 * Figure 5: effect of removing the prefetch buffers from the three
 * dual-issue models, at 17- and 35-cycle latencies. The figure plots
 * min/avg/max CPI with and without prefetching; the improvement
 * percentages quoted in §5.2 are printed alongside.
 */

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("Figure 5 - prefetch removal");

    const auto suite = tr::integerSuite();
    for (Cycle latency : {Cycle{17}, Cycle{35}}) {
        Table t({"Model", "Prefetch", "Cost (RBE)", "CPI min",
                 "CPI avg", "CPI max", "avg improvement %"});
        for (const auto &base : studyModels()) {
            double with_pf = 0.0;
            for (bool pf : {true, false}) {
                const auto m =
                    base.withLatency(latency).withPrefetch(pf);
                const auto res =
                    runSuite(m, suite, bench::runInsts());
                const auto acc = res.cpiStats();
                auto &row = t.row()
                                .cell(m.name)
                                .cell(pf ? "yes" : "no")
                                .cell(m.rbeCost(), 0)
                                .cell(acc.min(), 3)
                                .cell(acc.mean(), 3)
                                .cell(acc.max(), 3);
                if (pf) {
                    with_pf = acc.mean();
                    row.cell("-");
                } else {
                    row.cell(100.0 * (acc.mean() - with_pf) /
                                 acc.mean(),
                             1);
                }
            }
        }
        t.print(std::cout,
                "Figure 5 data, " + std::to_string(latency) +
                    "-cycle secondary latency");
    }
    std::cout << "(paper: baseline improves 11% @17 / 19% @35; "
                 "large 11% / 17%; small barely changes)\n";
    return 0;
}
