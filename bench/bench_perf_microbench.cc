/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: trace
 * generation rate, component costs, and end-to-end simulation
 * throughput. These guard against performance regressions in the
 * library (the table/figure harness runs millions of instructions).
 */

#include <benchmark/benchmark.h>

#include "core/simulator.hh"
#include "mem/cache.hh"
#include "mem/write_cache.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"

namespace
{

using namespace aurora;

void
BM_TraceGeneration(benchmark::State &state)
{
    trace::SyntheticWorkload w(trace::espresso());
    trace::Inst inst;
    for (auto _ : state) {
        w.next(inst);
        benchmark::DoNotOptimize(inst);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::DirectMappedCache cache(32 * 1024, 32);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        cache.fill(addr);
        addr += 36; // mixes hits and conflicts
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_WriteCacheStore(benchmark::State &state)
{
    mem::Biu biu(mem::BiuConfig{});
    mem::WriteCache wc(mem::WriteCacheConfig{}, biu);
    Addr addr = 0x1000;
    Cycle now = 0;
    for (auto _ : state) {
        wc.store(addr, 4, now++);
        addr = (addr + 68) & 0xffff;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteCacheStore);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    const auto machine = core::baselineModel();
    const auto profile = trace::espresso();
    const auto insts = static_cast<Count>(state.range(0));
    for (auto _ : state) {
        const auto r = core::simulate(machine, profile, insts);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(insts) *
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EndToEndSimulation)->Arg(50000)->Unit(
    benchmark::kMillisecond);

void
BM_FpSimulation(benchmark::State &state)
{
    const auto machine = core::baselineModel();
    const auto profile = trace::nasa7();
    for (auto _ : state) {
        const auto r = core::simulate(machine, profile, 50000);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(50000 *
                            static_cast<std::int64_t>(
                                state.iterations()));
}
BENCHMARK(BM_FpSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
