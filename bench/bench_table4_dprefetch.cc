/**
 * @file
 * Table 4: integer data-stream prefetch buffer hit rates, per
 * benchmark and machine model.
 */

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("Table 4 - integer D-stream prefetch hit rate %");

    const auto suite = tr::integerSuite();
    std::vector<std::string> headers = {"model"};
    for (const auto &p : suite)
        headers.push_back(p.name);
    headers.push_back("average");

    Table t(headers);
    for (const auto &m : studyModels()) {
        auto &row = t.row().cell(m.name);
        Accumulator avg;
        for (const auto &r :
             runSuite(m, suite, bench::runInsts()).runs) {
            row.cell(r.dprefetch_hit_pct, 2);
            avg.add(r.dprefetch_hit_pct);
        }
        row.cell(avg.mean(), 2);
    }
    t.print(std::cout, "Table 4: Integer D Prefetch Hit Rate %");
    std::cout << "(paper baseline row: espresso 8.95, li 14.41, "
                 "eqntott 2.29, compress 13.13, sc 27.42, gcc 8.63; "
                 "suite average ~12%)\n";
    return 0;
}
