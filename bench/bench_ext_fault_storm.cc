/**
 * @file
 * bench_ext_fault_storm — end-to-end exercise of the fault-tolerance
 * machinery (extension; not a figure from the paper).
 *
 * A design-space sweep is only trustworthy if a bad grid point cannot
 * take down the run and every class of fault is actually detected.
 * This driver manufactures all of them with the deterministic
 * injectors in src/faultinject and proves:
 *
 *   1. a grid with ~1/3 poisoned jobs (invalid configs + wedged
 *      machines) runs to completion at 1, 2 and 8 workers, healthy
 *      results stay bit-identical to an all-healthy sweep, and every
 *      injected fault surfaces with the expected error code;
 *   2. every trace-corruption mode is caught as BadTrace;
 *   3. the hard cycle budget trips deterministically;
 *   4. the retry policy turns a transiently failing job into a
 *      success and is visible in the report;
 *   5. a sweep SIGKILLed mid-grid leaves a half-written journal from
 *      which resume completes bit-identically at 1, 2 and 8 workers;
 *   6. a wedged machine under a wall-clock deadline becomes a Timeout
 *      outcome without blocking the rest of the grid;
 *   7. the sweep timeline records retry, timeout, and resume spans
 *      and exports them as a loadable trace-event artifact
 *      (AURORA_TIMELINE_OUT=path keeps it for Perfetto).
 *
 * Exits non-zero if any expectation fails, so scripts/check.sh can
 * use it as a smoke test.
 */

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "analyze/lint_config.hh"
#include "bench_common.hh"
#include "core/watchdog.hh"
#include "faultinject/faultinject.hh"
#include "harness/journal.hh"
#include "harness/sweep_trace.hh"
#include "telemetry/json.hh"
#include "trace/synthetic_workload.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;
using namespace aurora::harness;
namespace fi = aurora::faultinject;

constexpr std::uint64_t STORM_SEED = 0xfa17u;
constexpr double POISON_FRACTION = 1.0 / 3.0;

int failures = 0;

void
expect(bool ok, const std::string &what)
{
    std::cout << (ok ? "  [ok]   " : "  [FAIL] ") << what << "\n";
    if (!ok)
        ++failures;
}

/** Key-field equality — enough to witness bit-identical replay. */
bool
sameRun(const RunResult &a, const RunResult &b)
{
    return a.model == b.model && a.benchmark == b.benchmark &&
           a.instructions == b.instructions && a.cycles == b.cycles &&
           a.stalls == b.stalls && a.stores == b.stores &&
           a.fp_dispatched == b.fp_dispatched &&
           a.issue_width_cycles == b.issue_width_cycles;
}

/** Did the static linter flag @p machine with an error? */
bool
staticallyCaught(const MachineConfig &machine)
{
    return analyze::hasErrors(analyze::lintConfig(machine));
}

/** The storm grid: 3 models x (3 integer + 3 FP) benchmarks. */
std::vector<SweepJob>
healthyGrid(Count insts)
{
    const std::vector<std::string> benches = {
        "espresso", "li", "gcc", "nasa7", "doduc", "ora"};
    std::vector<SweepJob> grid;
    for (const auto &m : studyModels())
        for (const auto &name : benches)
            grid.push_back({m, trace::profileByName(name), insts});
    return grid;
}

/** True when grid slot @p i carries an FP benchmark (last 3 of 6). */
bool
isFpSlot(std::size_t i)
{
    return i % 6 >= 3;
}

void
poisonedGridStorm(Count insts)
{
    const auto healthy = healthyGrid(insts);

    // Poison ~1/3 of the slots: FP slots get a wedged (validates but
    // never retires) machine for the watchdog, the rest get a config
    // fault for validate().
    std::vector<SweepJob> grid = healthy;
    std::vector<bool> bad(grid.size(), false);
    std::size_t wedges = 0, config_faults = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!fi::poisoned(STORM_SEED, i, POISON_FRACTION))
            continue;
        bad[i] = true;
        if (isFpSlot(i)) {
            grid[i].machine = fi::wedgeConfig(grid[i].machine);
            ++wedges;
        } else {
            grid[i].machine = fi::poisonConfig(
                grid[i].machine,
                fi::anyConfigFault(fi::mix64(STORM_SEED + i)));
            ++config_faults;
        }
    }
    std::cout << "storm grid: " << grid.size() << " jobs, " << wedges
              << " wedged, " << config_faults
              << " invalid configs\n";
    expect(wedges > 0 && config_faults > 0,
           "the storm contains both fault classes");

    SweepOptions base;
    base.base_seed = STORM_SEED;
    // A tight no-retirement window keeps the wedged jobs cheap; a
    // healthy run of this length never goes 3000 cycles without a
    // retirement.
    base.watchdog = WatchdogConfig{3000, 0};
    // This storm exercises the RUNTIME detectors (validate() in the
    // worker, the watchdog); the static preflight would reject the
    // grid before any of them ran. preflightStorm() covers that path.
    base.preflight = false;

    // All-healthy reference, then the storm at three worker counts.
    SweepRunner ref_runner(base);
    const auto reference = ref_runner.runOutcomes(healthy);

    for (unsigned workers : {1u, 2u, 8u}) {
        SweepOptions opts = base;
        opts.workers = workers;
        SweepRunner runner(opts);
        const auto outcomes = runner.runOutcomes(grid);

        bool healthy_identical = true;
        bool codes_match = true;
        std::size_t failed = 0;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (bad[i]) {
                ++failed;
                const auto expected_code =
                    isFpSlot(i)
                        ? util::SimErrorCode::NoForwardProgress
                        : util::SimErrorCode::BadConfig;
                codes_match &= !outcomes[i].ok &&
                               outcomes[i].code == expected_code;
            } else {
                healthy_identical &=
                    outcomes[i].ok &&
                    sameRun(outcomes[i].result, reference[i].result);
            }
        }
        const std::string tag =
            " (workers=" + std::to_string(workers) + ")";
        expect(outcomes.size() == grid.size(),
               "storm ran to completion" + tag);
        expect(failed > 0 && codes_match,
               "every injected fault detected with its code" + tag);
        expect(healthy_identical,
               "healthy jobs bit-identical to all-healthy sweep" +
                   tag);
        expect(runner.report().failed_jobs == failed &&
                   runner.report().ok_jobs ==
                       grid.size() - failed,
               "report counts ok/failed jobs" + tag);
        if (workers == 8)
            std::cout << "  " << runner.report().summary() << "\n";
    }
}

void
preflightStorm(Count insts)
{
    // The same poisoned 18-job grid the runtime storm grinds
    // through, presented to a runner with the preflight pinned ON
    // (explicitly, so an AURORA_PREFLIGHT=0 environment — the obs
    // drill uses it — cannot disarm this section): the launch must
    // be rejected before any worker starts, with the report showing
    // zero jobs executed.
    std::vector<SweepJob> grid = healthyGrid(insts);
    std::size_t planted = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!fi::poisoned(STORM_SEED, i, POISON_FRACTION))
            continue;
        ++planted;
        if (isFpSlot(i))
            grid[i].machine = fi::wedgeConfig(grid[i].machine);
        else
            grid[i].machine = fi::poisonConfig(
                grid[i].machine,
                fi::anyConfigFault(fi::mix64(STORM_SEED + i)));
    }

    SweepOptions opts;
    opts.base_seed = STORM_SEED;
    opts.preflight = true;
    SweepRunner runner(opts);
    bool rejected = false;
    std::string message;
    try {
        runner.runOutcomes(grid);
    } catch (const util::SimError &e) {
        rejected = e.code() == util::SimErrorCode::BadConfig;
        message = e.what();
    }
    expect(rejected, "preflight rejects the poisoned grid");
    expect(message.find("preflight") != std::string::npos,
           "rejection names the preflight");
    expect(runner.report().jobs == 0,
           "no worker started: the report shows zero jobs");

    // Static-catch vs runtime-catch census over every fault mode.
    // The runtime detector column is what poisonedGridStorm and the
    // watchdog prove; the static column is the linter on the same
    // machine. The wedge is the headline: validate() passes it, the
    // watchdog needs the whole stall window, the graph check rejects
    // it instantly.
    std::size_t static_catches = 0;
    for (std::size_t k = 0; k < fi::NUM_CONFIG_FAULTS; ++k) {
        const auto fault = static_cast<fi::ConfigFault>(k);
        const bool caught =
            staticallyCaught(fi::poisonConfig(baselineModel(), fault));
        static_catches += caught ? 1 : 0;
        std::cout << "  fault " << fi::configFaultName(fault)
                  << ": static " << (caught ? "CAUGHT" : "missed")
                  << " | runtime validate()\n";
    }
    const bool wedge_static =
        staticallyCaught(fi::wedgeConfig(baselineModel()));
    static_catches += wedge_static ? 1 : 0;
    std::cout << "  fault wedge: static "
              << (wedge_static ? "CAUGHT" : "missed")
              << " | runtime watchdog (full stall window)\n";
    std::cout << "  static catches: " << static_catches << "/"
              << (fi::NUM_CONFIG_FAULTS + 1) << " fault modes ("
              << planted << " jobs planted in this grid)\n";
    expect(static_catches == fi::NUM_CONFIG_FAULTS + 1,
           "every config fault mode is caught statically");
}

void
traceCorruptionStorm()
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() /
                         ("aurora_fault_storm." +
                          std::to_string(::getpid()));
    fs::create_directories(dir);

    // A small but real trace to corrupt.
    trace::SyntheticWorkload workload(trace::espresso());
    std::vector<trace::Inst> insts;
    trace::Inst inst;
    for (int i = 0; i < 512 && workload.next(inst); ++i)
        insts.push_back(inst);
    const std::string pristine = (dir / "pristine.aur3").string();
    trace::writeTrace(pristine, insts);

    for (std::size_t k = 0; k < fi::NUM_TRACE_FAULTS; ++k) {
        const auto fault = static_cast<fi::TraceFault>(k);
        const std::string victim =
            (dir / (std::string("corrupt-") + fi::traceFaultName(fault) +
                    ".aur3"))
                .string();
        fs::copy_file(pristine, victim,
                      fs::copy_options::overwrite_existing);
        fi::corruptTraceFile(victim, fault, STORM_SEED);
        bool caught = false;
        try {
            trace::readTrace(victim);
        } catch (const util::SimError &e) {
            caught = e.code() == util::SimErrorCode::BadTrace;
        }
        expect(caught, std::string("trace fault '") +
                           fi::traceFaultName(fault) +
                           "' detected as BadTrace");
    }
    fs::remove_all(dir);
}

void
cycleBudgetStorm()
{
    constexpr Cycle BUDGET = 5000;
    Cycle tripped_at[2] = {0, 0};
    for (int round = 0; round < 2; ++round) {
        try {
            simulate(baselineModel(), trace::espresso(), 400'000,
                     WatchdogConfig{0, BUDGET});
        } catch (const WatchdogError &e) {
            if (e.code() == util::SimErrorCode::CycleBudgetExceeded)
                tripped_at[round] = e.diagnostic().cycle;
        }
    }
    expect(tripped_at[0] == BUDGET,
           "cycle budget trips exactly at the budget");
    expect(tripped_at[0] == tripped_at[1],
           "cycle budget trip is deterministic");
}

void
retryStorm(Count insts)
{
    // One transiently flaky task among healthy ones: it fails on its
    // first invocation only, as a crashed-and-respawned job would.
    std::atomic<unsigned> flaky_calls{0};
    std::vector<std::function<RunResult()>> tasks;
    for (int i = 0; i < 3; ++i)
        tasks.push_back([insts]() {
            return simulate(baselineModel(), trace::espresso(),
                            insts);
        });
    tasks.push_back([&flaky_calls, insts]() {
        if (flaky_calls.fetch_add(1) == 0)
            util::raiseError(util::SimErrorCode::Internal,
                             "transient storm failure");
        return simulate(baselineModel(), trace::li(), insts);
    });

    SweepOptions opts;
    opts.retries = 2;
    SweepRunner runner(opts);
    const auto outcomes = runner.runTaskOutcomes(tasks);
    expect(outcomes[3].ok && outcomes[3].attempts == 2,
           "flaky job recovered on its second attempt");
    expect(runner.report().retried_jobs == 1 &&
               runner.report().failed_jobs == 0,
           "report counts the retry");

    // Without a retry budget the same fault is terminal.
    std::atomic<unsigned> flaky_again{0};
    std::vector<std::function<RunResult()>> tasks2;
    tasks2.push_back([&flaky_again, insts]() {
        if (flaky_again.fetch_add(1) == 0)
            util::raiseError(util::SimErrorCode::Internal,
                             "transient storm failure");
        return simulate(baselineModel(), trace::li(), insts);
    });
    SweepOptions no_retry;
    no_retry.retries = 0;
    SweepRunner strict(no_retry);
    const auto strict_outcomes = strict.runTaskOutcomes(tasks2);
    expect(!strict_outcomes[0].ok &&
               strict_outcomes[0].attempts == 1,
           "without retries the transient fault is terminal");
}

void
journalResumeStorm(Count insts)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() /
                         ("aurora_journal_storm." +
                          std::to_string(::getpid()));
    fs::create_directories(dir);
    const std::string journal = (dir / "sweep.ajrn").string();

    const auto grid = healthyGrid(insts);
    const std::size_t n = grid.size();

    SweepOptions base;
    base.base_seed = STORM_SEED;

    // Uninterrupted reference (no journal).
    SweepRunner ref_runner(base);
    const auto reference = ref_runner.runOutcomes(grid);

    // Child process runs the journaled sweep and SIGKILLs itself the
    // moment half the grid has been flushed — the honest equivalent
    // of a machine dying overnight: no destructors, no atexit, at
    // most one torn record.
    const pid_t child = ::fork();
    expect(child >= 0, "fork() for the mid-grid kill");
    if (child == 0) {
        SweepOptions opts = base;
        opts.workers = 2;
        opts.journal = journal;
        opts.on_job_done = [n](std::size_t done, std::size_t) {
            if (done >= n / 2)
                ::kill(::getpid(), SIGKILL);
        };
        SweepRunner runner(opts);
        runner.runOutcomes(grid);
        ::_exit(0); // unreachable: the hook killed us mid-grid
    }
    int status = 0;
    ::waitpid(child, &status, 0);
    expect(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
           "sweep process died by SIGKILL mid-grid");

    const auto loaded = loadJournal(journal);
    expect(loaded.jobs == n && !loaded.records.empty() &&
               loaded.records.size() < n,
           "journal holds a strict subset of the grid (" +
               std::to_string(loaded.records.size()) + "/" +
               std::to_string(n) + " jobs)");

    for (unsigned workers : {1u, 2u, 8u}) {
        const std::string tag =
            " (workers=" + std::to_string(workers) + ")";
        // Resume a fresh copy per worker count so each one faces the
        // same half-written journal.
        const std::string copy =
            (dir / ("resume-" + std::to_string(workers) + ".ajrn"))
                .string();
        fs::copy_file(journal, copy,
                      fs::copy_options::overwrite_existing);

        SweepOptions opts = base;
        opts.workers = workers;
        opts.journal = copy;
        opts.resume = true;
        SweepRunner runner(opts);
        const auto outcomes = runner.runOutcomes(grid);

        bool identical = true;
        std::size_t resumed = 0;
        for (std::size_t i = 0; i < n; ++i) {
            identical &= outcomes[i].ok &&
                         sameRun(outcomes[i].result,
                                 reference[i].result);
            resumed += outcomes[i].resumed ? 1 : 0;
        }
        expect(identical,
               "resumed sweep bit-identical to uninterrupted" + tag);
        expect(resumed > 0 && resumed < n &&
                   runner.report().resumed_jobs == resumed &&
                   runner.report().ok_jobs == n,
               "report counts replayed jobs" + tag);

        // And the resumed journal is now complete: resuming again
        // replays everything without executing a single job.
        SweepRunner again(opts);
        const auto replayed = again.runOutcomes(grid);
        bool all_replayed = true;
        for (const auto &out : replayed)
            all_replayed &= out.ok && out.resumed;
        expect(all_replayed && again.report().resumed_jobs == n,
               "second resume is a pure replay" + tag);
    }
    fs::remove_all(dir);
}

void
deadlineStorm(Count insts)
{
    // Three healthy jobs and one wedged machine that validates but
    // never retires. With the stall watchdog disabled, only the
    // wall-clock deadline can end the wedged run.
    std::vector<SweepJob> grid;
    for (int i = 0; i < 3; ++i)
        grid.push_back({baselineModel(), trace::espresso(), insts});
    grid.push_back(
        {fi::wedgeConfig(baselineModel()), trace::nasa7(), insts});

    SweepOptions opts;
    opts.base_seed = STORM_SEED;
    opts.workers = 4; // hung + healthy genuinely concurrent
    opts.watchdog = WatchdogConfig{0, 0}; // no stall/cycle policing
    // Generous: sanitizer builds slow the healthy jobs too, and only
    // the wedge may ever expire.
    opts.deadline_ms = 2000;
    opts.retries = 2; // must NOT apply to the timeout
    opts.preflight = false; // the wedge must reach a worker
    SweepRunner runner(opts);
    const auto outcomes = runner.runOutcomes(grid);

    expect(outcomes[0].ok && outcomes[1].ok && outcomes[2].ok,
           "healthy jobs complete despite the hung one");
    expect(!outcomes[3].ok &&
               outcomes[3].code == util::SimErrorCode::Timeout,
           "wedged job converted into a Timeout outcome");
    expect(outcomes[3].attempts == 1,
           "a timed-out job is not retried");
    const auto &report = runner.report();
    expect(report.timed_out_jobs == 1 && report.failed_jobs == 0,
           "report counts the timeout separately from failures");
    expect(report.jobs == report.ok_jobs + report.failed_jobs +
                              report.timed_out_jobs +
                              report.skipped_jobs,
           "job accounting balances (ok+failed+timed_out+skipped)");
    std::cout << "  " << report.summary() << "\n";
}

void
timelineStorm(Count insts)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() /
                         ("aurora_timeline_storm." +
                          std::to_string(::getpid()));
    fs::create_directories(dir);

    // One timeline across both acts, so retry, timeout, and resume
    // spans land in a single trace-event artifact.
    SweepTimeline timeline;

    // Act 1: two healthy tasks, one transiently flaky one (retry
    // recovers it), and one wedged machine under a short wall-clock
    // deadline (converted to Timeout by the in-task watchdog).
    std::atomic<unsigned> flaky_calls{0};
    std::vector<std::function<RunResult()>> tasks;
    for (int i = 0; i < 2; ++i)
        tasks.push_back([insts]() {
            return simulate(baselineModel(), trace::espresso(),
                            insts);
        });
    tasks.push_back([&flaky_calls, insts]() {
        if (flaky_calls.fetch_add(1) == 0)
            util::raiseError(util::SimErrorCode::Internal,
                             "transient timeline failure");
        return simulate(baselineModel(), trace::li(), insts);
    });
    tasks.push_back([insts]() {
        return simulate(fi::wedgeConfig(baselineModel()),
                        trace::nasa7(), insts,
                        WatchdogConfig{0, 0, 500});
    });

    SweepOptions opts;
    opts.base_seed = STORM_SEED;
    opts.workers = 4;
    opts.retries = 2;
    opts.timeline = &timeline;
    SweepRunner runner(opts);
    const auto outcomes = runner.runTaskOutcomes(tasks);
    expect(outcomes[2].ok && outcomes[2].attempts == 2,
           "timeline storm: flaky job recovered on retry");
    expect(!outcomes[3].ok &&
               outcomes[3].code == util::SimErrorCode::Timeout,
           "timeline storm: wedged job timed out");

    // Act 2: a journaled mini-sweep run to completion, then resumed
    // on the same timeline — every job replays as a resumed instant.
    std::vector<SweepJob> grid;
    for (const auto *name : {"espresso", "li"})
        grid.push_back(
            {baselineModel(), trace::profileByName(name), insts});
    const std::string journal = (dir / "timeline.ajrn").string();
    {
        SweepOptions jopts;
        jopts.base_seed = STORM_SEED;
        jopts.journal = journal;
        SweepRunner first(jopts);
        first.runOutcomes(grid);
    }
    SweepOptions ropts;
    ropts.base_seed = STORM_SEED;
    ropts.journal = journal;
    ropts.resume = true;
    ropts.timeline = &timeline;
    SweepRunner replayer(ropts);
    replayer.runOutcomes(grid);

    // The artifact must witness every span class the storm produced.
    std::size_t retried = 0, timed_out = 0, resumed = 0;
    for (const auto &span : timeline.spans()) {
        retried += span.kind == SpanKind::Ok && span.attempt == 2;
        timed_out += span.kind == SpanKind::TimedOut;
        resumed += span.kind == SpanKind::Resumed;
    }
    expect(retried == 1, "timeline records the retry span (attempt 2)");
    expect(timed_out == 1, "timeline records the timeout span");
    expect(resumed == grid.size(),
           "timeline records every resumed replay");

    // Emit the trace-event artifact. AURORA_TIMELINE_OUT keeps it for
    // Perfetto; by default it lands in the scratch dir and is only
    // validated.
    const char *out_env = std::getenv("AURORA_TIMELINE_OUT");
    const std::string artifact =
        out_env && *out_env ? std::string(out_env)
                            : (dir / "fault_storm_timeline.json")
                                  .string();
    {
        std::ofstream os(artifact);
        writeTimelineTrace(os, timeline, "fault storm sweep");
    }
    std::ifstream is(artifact);
    std::stringstream text;
    text << is.rdbuf();
    std::string parse_error;
    const auto doc =
        telemetry::parseJson(text.str(), &parse_error);
    expect(doc && doc->isObject() && doc->find("traceEvents") &&
               doc->find("traceEvents")->isArray(),
           "timeline artifact parses as a trace-event document" +
               (parse_error.empty() ? "" : " (" + parse_error + ")"));
    std::cout << "  timeline artifact: " << artifact << " ("
              << timeline.size() << " spans)\n";

    // The scratch dir (journal + default artifact location) goes;
    // an AURORA_TIMELINE_OUT artifact lives outside it and survives.
    fs::remove_all(dir);
}

} // namespace

int
main()
{
    bench::banner("fault storm (robustness extension)");
    const Count insts = bench::runInsts();

    std::cout << "-- poisoned-grid isolation --\n";
    poisonedGridStorm(insts);
    std::cout << "\n-- static preflight --\n";
    preflightStorm(insts);
    std::cout << "\n-- trace corruption --\n";
    traceCorruptionStorm();
    std::cout << "\n-- cycle budget --\n";
    cycleBudgetStorm();
    std::cout << "\n-- retry policy --\n";
    retryStorm(insts / 10 ? insts / 10 : 1);
    std::cout << "\n-- journal + resume after SIGKILL --\n";
    journalResumeStorm(insts);
    std::cout << "\n-- wall-clock deadline --\n";
    deadlineStorm(insts);
    std::cout << "\n-- sweep timeline artifact --\n";
    timelineStorm(insts / 10 ? insts / 10 : 1);

    std::cout << "\nfault storm: "
              << (failures ? "FAILED" : "all expectations met")
              << "\n";
    return failures ? 1 : 0;
}
