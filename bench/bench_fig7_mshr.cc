/**
 * @file
 * Figure 7: effect of changing the MSHR count (degree of
 * non-blocking of the data cache). The standard dual-issue models
 * are compared against MSHR variations: small and baseline doubled
 * (1->2, 2->4), large reduced (4->2 and 4->1), plus a full 1..8
 * sweep per model.
 */

#include <algorithm>

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("Figure 7 - MSHR count variations");

    const auto suite = tr::integerSuite();

    Table t({"Model", "MSHRs", "Cost (RBE)", "CPI min", "CPI avg",
             "CPI max", "occ p95", "occ max"});
    for (const auto &base : studyModels()) {
        for (unsigned k : {1u, 2u, 4u, 8u}) {
            const auto m = base.withMshrs(k).withName(
                base.name + "/mshr=" + std::to_string(k));
            const auto res = runSuite(m, suite, bench::runInsts());
            const auto acc = res.cpiStats();
            // Worst-case occupancy over the suite: how much of the
            // provisioned MSHR file the workloads actually use.
            Count occ_p95 = 0;
            Count occ_max = 0;
            for (const auto &r : res.runs) {
                occ_p95 = std::max(occ_p95, r.mshr_occupancy.p95);
                occ_max = std::max(occ_max, r.mshr_occupancy.max);
            }
            t.row()
                .cell(m.name)
                .cell(std::uint64_t{k})
                .cell(m.rbeCost(), 0)
                .cell(acc.min(), 3)
                .cell(acc.mean(), 3)
                .cell(acc.max(), 3)
                .cell(occ_p95)
                .cell(occ_max);
        }
    }
    t.print(std::cout, "Figure 7 data (dual issue, 17-cycle latency)");
    std::cout
        << "(paper: small gains dramatically with added MSHRs, base "
           "slightly; large loses when reduced below 4; all models "
           "peak by 4 MSHRs; the occupancy tail shows when extra "
           "MSHRs go unused)\n";
    return 0;
}
