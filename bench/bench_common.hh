/**
 * @file
 * Shared helpers for the table/figure regeneration harness.
 *
 * Every bench binary prints the rows of one table or the data series
 * of one figure from the paper's evaluation section. Run lengths are
 * sized for seconds-scale turnaround; set AURORA_BENCH_INSTS to run
 * longer (statistics converge further but shapes do not change).
 * Sweep-shaped benches fan their runs out across AURORA_JOBS worker
 * threads (default: all hardware threads) and print a sweep summary
 * footer with wall time and aggregate simulation throughput.
 */

#ifndef AURORA_BENCH_COMMON_HH
#define AURORA_BENCH_COMMON_HH

#include <iostream>
#include <string>

#include "core/simulator.hh"
#include "harness/sweep.hh"
#include "trace/spec_profiles.hh"
#include "util/env.hh"
#include "util/table.hh"

namespace aurora::bench
{

/**
 * Instructions per (model, benchmark) run. A malformed or zero
 * AURORA_BENCH_INSTS falls back to the default with a warning —
 * strtoull's silent 0 would have turned every bench into a no-op.
 */
inline Count
runInsts()
{
    return envCount("AURORA_BENCH_INSTS", 200'000);
}

/** Print a standard bench header. */
inline void
banner(const std::string &what)
{
    std::cout << "==== Aurora III reproduction: " << what << " ====\n"
              << "(instructions per run: " << runInsts()
              << ", workers: " << harness::SweepRunner().workers()
              << ")\n\n";
}

/** Print the sweep timing/throughput footer of a converted bench. */
inline void
sweepFooter(const harness::SweepRunner &runner)
{
    std::cout << "\n" << runner.report().summary() << "\n";
}

/** Mean CPI over a slice of run results. */
inline double
meanCpi(const std::vector<core::RunResult> &runs, std::size_t begin,
        std::size_t count)
{
    Accumulator acc;
    for (std::size_t i = 0; i < count; ++i)
        acc.add(runs[begin + i].cpi());
    return acc.mean();
}

} // namespace aurora::bench

#endif // AURORA_BENCH_COMMON_HH
