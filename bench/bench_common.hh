/**
 * @file
 * Shared helpers for the table/figure regeneration harness.
 *
 * Every bench binary prints the rows of one table or the data series
 * of one figure from the paper's evaluation section. Run lengths are
 * sized for seconds-scale turnaround; set AURORA_BENCH_INSTS to run
 * longer (statistics converge further but shapes do not change).
 */

#ifndef AURORA_BENCH_COMMON_HH
#define AURORA_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/simulator.hh"
#include "trace/spec_profiles.hh"
#include "util/table.hh"

namespace aurora::bench
{

/** Instructions per (model, benchmark) run. */
inline Count
runInsts()
{
    if (const char *env = std::getenv("AURORA_BENCH_INSTS"))
        return static_cast<Count>(std::strtoull(env, nullptr, 10));
    return 200'000;
}

/** Print a standard bench header. */
inline void
banner(const std::string &what)
{
    std::cout << "==== Aurora III reproduction: " << what << " ====\n"
              << "(instructions per run: " << runInsts() << ")\n\n";
}

} // namespace aurora::bench

#endif // AURORA_BENCH_COMMON_HH
