/**
 * @file
 * Extension: multiprogramming and cache pollution.
 *
 * The Aurora III targets "a workstation or a high end PC system"
 * (§1), which timeshares. This bench interleaves two benchmarks at
 * decreasing context-switch quanta and measures how the small
 * on-chip structures (1-4 KB I-cache, 2-8-line write cache, stream
 * buffers) cope with the pollution — the smaller the machine, the
 * steeper the degradation.
 */

#include "bench_common.hh"

#include "core/processor.hh"
#include "trace/synthetic_workload.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

double
mixedCpi(const MachineConfig &m, Count quantum, Count insts)
{
    trace::SyntheticWorkload a(trace::espresso());
    trace::SyntheticWorkload b(trace::gcc());
    trace::InterleavedTraceSource mix({&a, &b}, quantum);
    trace::LimitedTraceSource limited(mix, insts);
    Processor cpu(m, limited);
    return cpu.run().cpi();
}

} // namespace

int
main()
{
    using namespace aurora;
    using namespace aurora::core;

    bench::banner("extension - context switching (espresso + gcc)");

    const Count insts = bench::runInsts();
    Table t({"quantum (insts)", "small", "baseline", "large"});

    // Reference: the two programs run back to back (one switch),
    // i.e. the pollution-free mix of the same instructions.
    auto reference = [&](const MachineConfig &m) {
        const double a =
            simulate(m, trace::espresso(), insts / 2).cpi();
        const double b = simulate(m, trace::gcc(), insts / 2).cpi();
        return (a + b) / 2.0;
    };
    t.row()
        .cell("separate (reference)")
        .cell(reference(smallModel()), 3)
        .cell(reference(baselineModel()), 3)
        .cell(reference(largeModel()), 3);

    const Count quanta[] = {50'000, 10'000, 2'000, 500};
    for (const Count q : quanta) {
        t.row()
            .cell(q)
            .cell(mixedCpi(smallModel(), q, insts), 3)
            .cell(mixedCpi(baselineModel(), q, insts), 3)
            .cell(mixedCpi(largeModel(), q, insts), 3);
    }
    t.print(std::cout, "CPI vs context-switch quantum");
    std::cout
        << "(expected: CPI degrades as quanta shrink — each switch "
           "refills the small on-chip structures — and the small "
           "model degrades relatively most)\n";
    return 0;
}
