/**
 * @file
 * Ablations beyond the paper's figures (DESIGN.md §6): branch
 * folding, write-validation, stream-buffer depth, and the §5.9
 * double-word FP load/store extension. Every suite evaluation runs
 * through one shared SweepRunner, so the whole ablation battery fans
 * out across AURORA_JOBS workers.
 */

#include "bench_common.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

harness::SweepRunner runner;

double
intSuiteCpi(const MachineConfig &m)
{
    return harness::runSuite(runner, m, trace::integerSuite(),
                             aurora::bench::runInsts())
        .avgCpi();
}

double
fpSuiteCpi(const MachineConfig &m, bool double_word = false)
{
    auto suite = trace::floatSuite();
    for (auto &p : suite)
        p.double_word_mem = double_word;
    return harness::runSuite(runner, m, suite,
                             aurora::bench::runInsts())
        .avgCpi();
}

} // namespace

int
main()
{
    using namespace aurora;
    using namespace aurora::core;

    bench::banner("design ablations");

    Table t({"ablation", "CPI avg", "delta %"});

    {
        const double base = intSuiteCpi(baselineModel());
        auto nf = baselineModel();
        nf.ifu.branch_folding = false;
        const double without = intSuiteCpi(nf);
        t.row().cell("baseline (branch folding on)").cell(base, 3)
            .cell("-");
        t.row()
            .cell("branch folding removed (Fig 3 NEXT field)")
            .cell(without, 3)
            .cell(100.0 * (without - base) / base, 1);
    }
    {
        auto nv = baselineModel();
        nv.write_cache.validate_writes = false;
        const double base = intSuiteCpi(baselineModel());
        const double without = intSuiteCpi(nv);
        t.row()
            .cell("write validation micro-TLB disabled")
            .cell(without, 3)
            .cell(100.0 * (without - base) / base, 1);
    }
    {
        const double base = intSuiteCpi(baselineModel());
        for (unsigned depth : {1u, 2u, 4u, 8u}) {
            auto m = baselineModel();
            m.prefetch.depth = depth;
            const double c = intSuiteCpi(m);
            t.row()
                .cell("stream buffer depth " + std::to_string(depth))
                .cell(c, 3)
                .cell(100.0 * (c - base) / base, 1);
        }
    }
    {
        // §2.1: short pipelines with forwarding vs a deeper ALU
        // pipeline whose results take an extra cycle to reach
        // dependents.
        const double base = intSuiteCpi(baselineModel());
        for (unsigned lat : {2u, 3u}) {
            auto m = baselineModel();
            m.alu_latency = lat;
            const double c = intSuiteCpi(m);
            t.row()
                .cell("ALU result latency " + std::to_string(lat) +
                      " (deep pipeline, no full forwarding)")
                .cell(c, 3)
                .cell(100.0 * (c - base) / base, 1);
        }
    }
    {
        // §2: the collision-based split-transaction bus protocol,
        // modelled explicitly instead of folded into the average
        // latency.
        const double base = intSuiteCpi(baselineModel());
        auto m = baselineModel();
        m.biu.model_collisions = true;
        const double c = intSuiteCpi(m);
        t.row()
            .cell("explicit BIU collision modelling")
            .cell(c, 3)
            .cell(100.0 * (c - base) / base, 1);
    }
    {
        // Jouppi's alternative: a victim cache instead of (and next
        // to) the stream buffers, on the conflict-prone small model.
        const double base = intSuiteCpi(smallModel());
        auto vc_only = smallModel().withPrefetch(false);
        vc_only.lsu.victim_lines = 4;
        auto both = smallModel();
        both.lsu.victim_lines = 4;
        const double vco = intSuiteCpi(vc_only);
        const double b = intSuiteCpi(both);
        t.row()
            .cell("small: 4-line victim cache, no stream buffers")
            .cell(vco, 3)
            .cell(100.0 * (vco - base) / base, 1);
        t.row()
            .cell("small: victim cache + stream buffers")
            .cell(b, 3)
            .cell(100.0 * (b - base) / base, 1);
    }
    {
        // §3.1 precise exception mode.
        auto precise_machine = baselineModel();
        precise_machine.fpu.precise_exceptions = true;
        const double fast = fpSuiteCpi(baselineModel());
        const double precise = fpSuiteCpi(precise_machine);
        t.row()
            .cell("FP imprecise (fast) mode, SPECfp")
            .cell(fast, 3)
            .cell("-");
        t.row()
            .cell("FP precise exception mode (S3.1)")
            .cell(precise, 3)
            .cell(100.0 * (precise - fast) / fast, 1);
    }
    {
        const double paired = fpSuiteCpi(baselineModel(), false);
        const double dword = fpSuiteCpi(baselineModel(), true);
        t.row()
            .cell("FP loads as paired 32-bit halves (base ISA)")
            .cell(paired, 3)
            .cell("-");
        t.row()
            .cell("double-word FP loads/stores (S5.9 extension)")
            .cell(dword, 3)
            .cell(100.0 * (dword - paired) / paired, 1);
    }

    t.print(std::cout, "Ablation results");
    std::cout << "(expected: removing folding hurts; double-word FP "
                 "memory helps, as S5.9 predicts)\n";

    bench::sweepFooter(runner);
    return 0;
}
