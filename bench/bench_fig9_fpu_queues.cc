/**
 * @file
 * Figure 9 (a), (b), (c): FPU memory-resource cost studies — CPI as
 * a function of instruction queue depth (1-5), load data queue depth
 * (1-5), and FPU reorder buffer size (3-11), under the single-issue
 * out-of-order-completion policy the paper uses for these sweeps.
 * All three grids run through one sweep batch.
 */

#include <algorithm>

#include "bench_common.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

MachineConfig
singleIssueFpu()
{
    auto m = baselineModel();
    m.fpu.policy = fpu::IssuePolicy::OutOfOrderSingle;
    return m;
}

} // namespace

int
main()
{
    using namespace aurora;
    using namespace aurora::core;

    bench::banner("Figure 9a-c - FPU queue and ROB sizing");

    const auto suite = trace::floatSuite();
    const std::size_t nb = suite.size();
    const unsigned iq_sizes[] = {1, 2, 3, 4, 5, 7};
    const unsigned lq_sizes[] = {1, 2, 3, 4, 5};
    const unsigned rob_sizes[] = {3, 5, 7, 9, 11};

    // One flat grid; each configuration contributes one suite slice.
    harness::SweepRunner runner;
    std::vector<harness::SweepJob> grid;
    const auto add_config = [&](const MachineConfig &m) {
        const std::size_t begin = grid.size();
        for (const auto &job :
             harness::suiteJobs(m, suite, bench::runInsts()))
            grid.push_back(job);
        return begin;
    };

    std::vector<std::size_t> iq_single, iq_dual, lq, fprob;
    for (unsigned q : iq_sizes) {
        auto single = singleIssueFpu();
        single.fpu.inst_queue = q;
        iq_single.push_back(add_config(single));
        auto dual = baselineModel();
        dual.fpu.inst_queue = q;
        iq_dual.push_back(add_config(dual));
    }
    for (unsigned q : lq_sizes) {
        auto m = singleIssueFpu();
        m.fpu.load_queue = q;
        lq.push_back(add_config(m));
    }
    for (unsigned q : rob_sizes) {
        auto m = singleIssueFpu();
        m.fpu.rob_entries = q;
        fprob.push_back(add_config(m));
    }

    const auto results = runner.run(grid);

    // Deepest per-cycle queue occupancy tail over one suite slice:
    // evidence for *why* CPI flattens once the queue covers the tail.
    const auto slice_tail = [&](std::size_t begin,
                                const auto &accessor) {
        Count p95 = 0;
        Count max = 0;
        for (std::size_t j = begin; j < begin + nb; ++j) {
            const OccupancyStats &occ = accessor(results[j]);
            p95 = std::max(p95, occ.p95);
            max = std::max(max, occ.max);
        }
        return std::make_pair(p95, max);
    };
    const auto instq = [](const RunResult &r) -> const OccupancyStats & {
        return r.fp_instq_occupancy;
    };
    const auto loadq = [](const RunResult &r) -> const OccupancyStats & {
        return r.fp_loadq_occupancy;
    };

    Table a({"instruction queue entries", "CPI single issue",
             "CPI dual issue", "depth p95", "depth max"});
    for (std::size_t i = 0; i < std::size(iq_sizes); ++i) {
        const auto [p95, max] = slice_tail(iq_dual[i], instq);
        a.row()
            .cell(std::uint64_t{iq_sizes[i]})
            .cell(bench::meanCpi(results, iq_single[i], nb), 3)
            .cell(bench::meanCpi(results, iq_dual[i], nb), 3)
            .cell(p95)
            .cell(max);
    }
    a.print(std::cout, "Figure 9(a): instruction queue size "
                       "(depth tail from the dual-issue runs)");
    std::cout << "(paper: flattens by 3 entries for single issue; "
                 "dual issue places greater demand and wants 5 — the "
                 "'simulations not shown' of S5.9)\n\n";

    Table b({"load data queue entries", "CPI avg", "depth p95",
             "depth max"});
    for (std::size_t i = 0; i < std::size(lq_sizes); ++i) {
        const auto [p95, max] = slice_tail(lq[i], loadq);
        b.row()
            .cell(std::uint64_t{lq_sizes[i]})
            .cell(bench::meanCpi(results, lq[i], nb), 3)
            .cell(p95)
            .cell(max);
    }
    b.print(std::cout, "Figure 9(b): load data queue size");
    std::cout << "(paper: two entries needed — double precision "
                 "operands arrive as two 32-bit loads)\n\n";

    Table c({"FPU reorder buffer entries", "CPI avg"});
    for (std::size_t i = 0; i < std::size(rob_sizes); ++i) {
        c.row()
            .cell(std::uint64_t{rob_sizes[i]})
            .cell(bench::meanCpi(results, fprob[i], nb), 3);
    }
    c.print(std::cout, "Figure 9(c): reorder buffer size");
    std::cout << "(paper: sensitivity disappears above ~6 entries)\n";

    bench::sweepFooter(runner);
    return 0;
}
