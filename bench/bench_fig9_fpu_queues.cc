/**
 * @file
 * Figure 9 (a), (b), (c): FPU memory-resource cost studies — CPI as
 * a function of instruction queue depth (1-5), load data queue depth
 * (1-5), and FPU reorder buffer size (3-11), under the single-issue
 * out-of-order-completion policy the paper uses for these sweeps.
 */

#include "bench_common.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

double
fpSuiteCpi(const MachineConfig &m)
{
    Accumulator acc;
    for (const auto &p : trace::floatSuite())
        acc.add(simulate(m, p, aurora::bench::runInsts()).cpi());
    return acc.mean();
}

MachineConfig
singleIssueFpu()
{
    auto m = baselineModel();
    m.fpu.policy = fpu::IssuePolicy::OutOfOrderSingle;
    return m;
}

} // namespace

int
main()
{
    using namespace aurora;
    using namespace aurora::core;

    bench::banner("Figure 9a-c - FPU queue and ROB sizing");

    Table a({"instruction queue entries", "CPI single issue",
             "CPI dual issue"});
    for (unsigned q : {1u, 2u, 3u, 4u, 5u, 7u}) {
        auto single = singleIssueFpu();
        single.fpu.inst_queue = q;
        auto dual = baselineModel();
        dual.fpu.inst_queue = q;
        a.row()
            .cell(std::uint64_t{q})
            .cell(fpSuiteCpi(single), 3)
            .cell(fpSuiteCpi(dual), 3);
    }
    a.print(std::cout, "Figure 9(a): instruction queue size");
    std::cout << "(paper: flattens by 3 entries for single issue; "
                 "dual issue places greater demand and wants 5 — the "
                 "'simulations not shown' of S5.9)\n\n";

    Table b({"load data queue entries", "CPI avg"});
    for (unsigned q : {1u, 2u, 3u, 4u, 5u}) {
        auto m = singleIssueFpu();
        m.fpu.load_queue = q;
        b.row().cell(std::uint64_t{q}).cell(fpSuiteCpi(m), 3);
    }
    b.print(std::cout, "Figure 9(b): load data queue size");
    std::cout << "(paper: two entries needed — double precision "
                 "operands arrive as two 32-bit loads)\n\n";

    Table c({"FPU reorder buffer entries", "CPI avg"});
    for (unsigned q : {3u, 5u, 7u, 9u, 11u}) {
        auto m = singleIssueFpu();
        m.fpu.rob_entries = q;
        c.row().cell(std::uint64_t{q}).cell(fpSuiteCpi(m), 3);
    }
    c.print(std::cout, "Figure 9(c): reorder buffer size");
    std::cout << "(paper: sensitivity disappears above ~6 entries)\n";
    return 0;
}
