/**
 * @file
 * Table 1: the three machine models and their associated resources,
 * plus the RBE cost the rest of the study prices them at.
 */

#include "bench_common.hh"

#include "core/machine_config.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;

    bench::banner("Table 1 - machine models");

    Table t({"Model", "I Cache", "D Cache", "Write Cache",
             "ROB Entries", "Prefetch Buffers", "MSHR Entries",
             "RBE (dual issue)"});
    for (const auto &m : studyModels()) {
        t.row()
            .cell(m.name)
            .cell(std::to_string(m.ifu.icache_bytes / 1024) + " KB")
            .cell(std::to_string(m.lsu.dcache_bytes / 1024) + " KB")
            .cell(std::to_string(m.write_cache.lines) + " lines")
            .cell(std::uint64_t{m.rob_entries})
            .cell(std::uint64_t{m.prefetch.num_buffers})
            .cell(std::uint64_t{m.lsu.mshr_entries})
            .cell(m.rbeCost(), 0);
    }
    t.print(std::cout, "Table 1: The Three Machine Models");
    return 0;
}
