/**
 * @file
 * Table 5: integer write cache hit rate percentages, plus the §5.5
 * store traffic reduction figures (BIU store transactions as a
 * percentage of store instructions).
 */

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("Table 5 - write cache hit rate %");

    const auto suite = tr::integerSuite();
    std::vector<std::string> headers = {"model"};
    for (const auto &p : suite)
        headers.push_back(p.name);
    headers.push_back("average");

    Table hit(headers);
    Table traffic(headers);
    for (const auto &m : studyModels()) {
        auto &hrow = hit.row().cell(m.name);
        auto &trow = traffic.row().cell(m.name);
        Accumulator havg, tavg;
        for (const auto &r :
             runSuite(m, suite, bench::runInsts()).runs) {
            hrow.cell(r.write_cache_hit_pct, 2);
            havg.add(r.write_cache_hit_pct);
            trow.cell(r.storeTrafficPct(), 1);
            tavg.add(r.storeTrafficPct());
        }
        hrow.cell(havg.mean(), 2);
        trow.cell(tavg.mean(), 1);
    }
    hit.print(std::cout,
              "Table 5: Integer Write Cache Hit Rate % "
              "(loads + stores)");
    std::cout << "(paper baseline row: espresso 37.17, li 49.17, "
                 "eqntott 48.34, compress 46.29, sc 52.53, "
                 "gcc 54.93)\n\n";
    traffic.print(std::cout,
                  "S5.5: BIU store transactions as % of store "
                  "instructions");
    std::cout << "(paper: ~44% small, ~30% baseline, ~22% large)\n";
    return 0;
}
