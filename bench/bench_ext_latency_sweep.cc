/**
 * @file
 * Extension: CPI as a function of secondary memory latency.
 *
 * The paper's introduction motivates the whole study with the growing
 * processor/memory speed gap ("primary cache miss penalties will rise
 * ... to as many as 100 clock cycles"); §5 samples only 17 and 35
 * cycles. This bench sweeps the latency axis for the three models and
 * for single vs. dual issue, showing where the second pipeline stops
 * paying for itself.
 */

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("extension - secondary latency sweep");

    const auto suite = tr::integerSuite();
    const Cycle lats[] = {5, 10, 17, 25, 35, 50, 70, 100};

    Table t({"latency", "small", "baseline", "large",
             "baseline x1", "dual gain %"});
    for (Cycle lat : lats) {
        const double s =
            runSuite(smallModel().withLatency(lat), suite,
                     bench::runInsts())
                .avgCpi();
        const double b =
            runSuite(baselineModel().withLatency(lat), suite,
                     bench::runInsts())
                .avgCpi();
        const double l =
            runSuite(largeModel().withLatency(lat), suite,
                     bench::runInsts())
                .avgCpi();
        const double b1 = runSuite(baselineModel()
                                       .withLatency(lat)
                                       .withIssueWidth(1),
                                   suite, bench::runInsts())
                              .avgCpi();
        t.row()
            .cell(std::uint64_t{lat})
            .cell(s, 3)
            .cell(b, 3)
            .cell(l, 3)
            .cell(b1, 3)
            .cell(100.0 * (b1 - b) / b1, 1);
    }
    t.print(std::cout, "CPI vs secondary latency (dual issue unless "
                       "noted)");
    std::cout << "(expected: the dual-issue gain column shrinks as "
                 "latency grows — the paper's conclusion that long "
                 "latencies reduce the benefit of superscalar "
                 "issue)\n";
    return 0;
}
