/**
 * @file
 * Extension: CPI as a function of secondary memory latency.
 *
 * The paper's introduction motivates the whole study with the growing
 * processor/memory speed gap ("primary cache miss penalties will rise
 * ... to as many as 100 clock cycles"); §5 samples only 17 and 35
 * cycles. This bench sweeps the latency axis for the three models and
 * for single vs. dual issue, showing where the second pipeline stops
 * paying for itself. The 8-latency × 4-config grid is one sweep batch.
 */

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("extension - secondary latency sweep");

    const auto suite = tr::integerSuite();
    const std::size_t nb = suite.size();
    const Cycle lats[] = {5, 10, 17, 25, 35, 50, 70, 100};

    harness::SweepRunner runner;
    std::vector<harness::SweepJob> grid;
    const auto add_config = [&](const MachineConfig &m) {
        const std::size_t begin = grid.size();
        for (const auto &job :
             harness::suiteJobs(m, suite, bench::runInsts()))
            grid.push_back(job);
        return begin;
    };

    // Per latency: small, baseline, large, baseline single-issue.
    std::vector<std::size_t> slices;
    for (Cycle lat : lats) {
        slices.push_back(add_config(smallModel().withLatency(lat)));
        slices.push_back(add_config(baselineModel().withLatency(lat)));
        slices.push_back(add_config(largeModel().withLatency(lat)));
        slices.push_back(add_config(
            baselineModel().withLatency(lat).withIssueWidth(1)));
    }

    const auto results = runner.run(grid);

    Table t({"latency", "small", "baseline", "large",
             "baseline x1", "dual gain %"});
    for (std::size_t li = 0; li < std::size(lats); ++li) {
        const double s = bench::meanCpi(results, slices[4 * li], nb);
        const double b =
            bench::meanCpi(results, slices[4 * li + 1], nb);
        const double l =
            bench::meanCpi(results, slices[4 * li + 2], nb);
        const double b1 =
            bench::meanCpi(results, slices[4 * li + 3], nb);
        t.row()
            .cell(std::uint64_t{lats[li]})
            .cell(s, 3)
            .cell(b, 3)
            .cell(l, 3)
            .cell(b1, 3)
            .cell(100.0 * (b1 - b) / b1, 1);
    }
    t.print(std::cout, "CPI vs secondary latency (dual issue unless "
                       "noted)");
    std::cout << "(expected: the dual-issue gain column shrinks as "
                 "latency grows — the paper's conclusion that long "
                 "latencies reduce the benefit of superscalar "
                 "issue)\n";

    bench::sweepFooter(runner);
    return 0;
}
