/**
 * @file
 * Figure 9 (d), (e), (f), (g): FPU functional-unit latency studies —
 * CPI and unit area (RBE) across the implementable latency ranges of
 * the add, multiply, divide and convert units, plus the §5.10
 * non-pipelined add/multiply ablation.
 */

#include "bench_common.hh"

#include "cost/rbe.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

double
fpSuiteCpi(const MachineConfig &m)
{
    Accumulator acc;
    for (const auto &p : trace::floatSuite())
        acc.add(simulate(m, p, aurora::bench::runInsts()).cpi());
    return acc.mean();
}

} // namespace

int
main()
{
    using namespace aurora;
    using namespace aurora::core;

    bench::banner("Figure 9d-g - FPU unit latencies");

    Table d({"add latency", "CPI avg", "unit RBE"});
    for (Cycle lat = 1; lat <= 5; ++lat) {
        auto m = baselineModel();
        m.fpu.add.latency = lat;
        d.row()
            .cell(std::uint64_t{lat})
            .cell(fpSuiteCpi(m), 3)
            .cell(cost::fpAddRbe(lat, true), 0);
    }
    d.print(std::cout, "Figure 9(d): add unit");

    Table e({"multiply latency", "CPI avg", "unit RBE"});
    for (Cycle lat = 1; lat <= 5; ++lat) {
        auto m = baselineModel();
        m.fpu.mul.latency = lat;
        e.row()
            .cell(std::uint64_t{lat})
            .cell(fpSuiteCpi(m), 3)
            .cell(cost::fpMulRbe(lat, true), 0);
    }
    e.print(std::cout, "Figure 9(e): multiply unit");

    Table f({"divide latency", "CPI avg", "unit RBE"});
    for (Cycle lat : {Cycle{10}, Cycle{15}, Cycle{19}, Cycle{25},
                      Cycle{30}}) {
        auto m = baselineModel();
        m.fpu.div.latency = lat;
        f.row()
            .cell(std::uint64_t{lat})
            .cell(fpSuiteCpi(m), 3)
            .cell(cost::fpDivRbe(lat), 0);
    }
    f.print(std::cout, "Figure 9(f): divide unit");

    Table g({"convert latency", "CPI avg", "unit RBE"});
    for (Cycle lat = 1; lat <= 5; ++lat) {
        auto m = baselineModel();
        m.fpu.cvt.latency = lat;
        g.row()
            .cell(std::uint64_t{lat})
            .cell(fpSuiteCpi(m), 3)
            .cell(cost::fpCvtRbe(lat), 0);
    }
    g.print(std::cout, "Figure 9(g): conversion unit");

    // §5.10 ablation: iterative (non-pipelined) add and multiply.
    Table abl({"configuration", "CPI avg", "add+mul RBE"});
    {
        auto piped = baselineModel();
        abl.row()
            .cell("pipelined add & multiply")
            .cell(fpSuiteCpi(piped), 3)
            .cell(cost::fpAddRbe(3, true) + cost::fpMulRbe(5, true),
                  0);
        auto iter = baselineModel();
        iter.fpu.add.pipelined = false;
        iter.fpu.mul.pipelined = false;
        abl.row()
            .cell("iterative add & multiply")
            .cell(fpSuiteCpi(iter), 3)
            .cell(cost::fpAddRbe(3, false) + cost::fpMulRbe(5, false),
                  0);
    }
    abl.print(std::cout, "S5.10 pipelining ablation");
    std::cout << "(paper: add/multiply each swing CPI ~17% over 1-5 "
                 "cycles, divide ~8% over 10-30, conversion is "
                 "insensitive; removing pipeline latches costs <5% "
                 "performance and saves ~25% of unit area)\n";
    return 0;
}
