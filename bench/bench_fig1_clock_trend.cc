/**
 * @file
 * Figure 1: single-chip microprocessor clock frequencies at ISSCC,
 * 1984-1994, with the ~40 %/year trend line the paper draws.
 *
 * The figure is data, not simulation; the fastest- and slowest-chip
 * series below are representative of the published ISSCC digests the
 * paper plots (e.g. 68020-class parts in the mid-80s through the
 * 200 MHz DEC Alpha 21064 [4] and the 300 MHz-class GaAs parts the
 * Aurora project targeted). The bench fits the exponential growth
 * rate and checks the paper's two observations: ~40 %/year growth,
 * and a fastest/slowest gap of at least 2x that widens.
 */

#include "bench_common.hh"

#include <cmath>

int
main()
{
    using namespace aurora;

    bench::banner("Figure 1 - ISSCC clock frequency trend");

    struct Point
    {
        int year;
        double slowest_mhz;
        double fastest_mhz;
    };
    // Representative ISSCC single-chip CPU clock rates.
    const Point data[] = {
        {1984, 8, 16},    {1985, 10, 20},   {1986, 12, 25},
        {1987, 16, 33},   {1988, 20, 50},   {1989, 25, 80},
        {1990, 33, 100},  {1991, 40, 150},  {1992, 50, 200},
        {1993, 66, 275},  {1994, 75, 300},
    };

    Table t({"year", "slowest MHz", "fastest MHz", "ratio"});
    for (const Point &p : data)
        t.row()
            .cell(static_cast<std::uint64_t>(p.year))
            .cell(p.slowest_mhz, 0)
            .cell(p.fastest_mhz, 0)
            .cell(p.fastest_mhz / p.slowest_mhz, 1);
    t.print(std::cout, "Figure 1 data");

    // Least-squares fit of log(fastest) vs year.
    const int n = static_cast<int>(std::size(data));
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (const Point &p : data) {
        const double x = p.year - 1984;
        const double y = std::log(p.fastest_mhz);
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    const double slope =
        (n * sxy - sx * sy) / (n * sxx - sx * sx);
    const double growth = std::exp(slope) - 1.0;

    std::cout << "fitted growth of the fastest chip: "
              << formatFixed(growth * 100.0, 1)
              << "% per year (paper: ~40%)\n"
              << "fastest/slowest gap: "
              << formatFixed(data[0].fastest_mhz / data[0].slowest_mhz,
                             1)
              << "x in 1984 -> "
              << formatFixed(
                     data[n - 1].fastest_mhz / data[n - 1].slowest_mhz,
                     1)
              << "x in 1994 (paper: at least 2x, widening)\n";
    return 0;
}
