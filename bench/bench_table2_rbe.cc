/**
 * @file
 * Table 2: processor element costs in RBE units, regenerated from the
 * cost model (the model encodes these constants; this binary verifies
 * and prints them the way the paper tabulates them).
 */

#include "bench_common.hh"

#include "cost/rbe.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::cost;

    bench::banner("Table 2 - element costs in RBE");

    Table ipu({"IPU Element", "Cost in RBE"});
    ipu.row().cell("1 Kbyte Cache Block").cell(icacheRbe(1024), 0);
    ipu.row().cell("2 Kbyte Cache Block").cell(icacheRbe(2048), 0);
    ipu.row().cell("4 Kbyte Cache Block").cell(icacheRbe(4096), 0);
    ipu.row().cell("1 Write Cache Line").cell(writeCacheRbe(1), 0);
    ipu.row().cell("1 Prefetch Line").cell(prefetchRbe(1, 1), 0);
    ipu.row().cell("1 Reorder Buffer Entry").cell(robRbe(1), 0);
    ipu.row().cell("1 MSHR Entry").cell(mshrRbe(1), 0);
    ipu.row().cell("1 Integer Execution Pipeline")
        .cell(pipelineRbe(1), 0);
    ipu.print(std::cout, "Table 2 (IPU elements)");

    Table fpu({"FPU Element", "Cost in RBE"});
    fpu.row().cell("1 Data Resource Block (RF, SB)")
        .cell(RBE_FPU_DATA_BLOCK, 0);
    fpu.row().cell("1 Instruction Queue Entry")
        .cell(RBE_FP_INST_QUEUE_ENTRY, 0);
    fpu.row().cell("1 Data Queue Entry")
        .cell(RBE_FP_DATA_QUEUE_ENTRY, 0);
    fpu.row().cell("Add Unit (1 cycle)").cell(fpAddRbe(1, true), 0);
    fpu.row().cell("Add Unit (5 cycles)").cell(fpAddRbe(5, true), 0);
    fpu.row().cell("Multiply Unit (1 cycle)")
        .cell(fpMulRbe(1, true), 0);
    fpu.row().cell("Multiply Unit (5 cycles)")
        .cell(fpMulRbe(5, true), 0);
    fpu.row().cell("Divide Unit (10 cycles)").cell(fpDivRbe(10), 0);
    fpu.row().cell("Divide Unit (30 cycles)").cell(fpDivRbe(30), 0);
    fpu.row().cell("Conversion Unit (1 cycle)").cell(fpCvtRbe(1), 0);
    fpu.row().cell("Conversion Unit (5 cycles)").cell(fpCvtRbe(5), 0);
    fpu.print(std::cout, "Table 2 (FPU elements)");
    return 0;
}
