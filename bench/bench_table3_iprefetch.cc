/**
 * @file
 * Table 3: integer instruction-stream prefetch buffer hit rates, per
 * benchmark and machine model.
 */

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("Table 3 - integer I-stream prefetch hit rate %");

    const auto suite = tr::integerSuite();
    std::vector<std::string> headers = {"model"};
    for (const auto &p : suite)
        headers.push_back(p.name);
    headers.push_back("average");

    Table t(headers);
    for (const auto &m : studyModels()) {
        auto &row = t.row().cell(m.name);
        Accumulator avg;
        for (const auto &r :
             runSuite(m, suite, bench::runInsts()).runs) {
            row.cell(r.iprefetch_hit_pct, 2);
            avg.add(r.iprefetch_hit_pct);
        }
        row.cell(avg.mean(), 2);
    }
    t.print(std::cout, "Table 3: Integer I Prefetch Hit Rate %");
    std::cout << "(paper baseline row: espresso 61.02, li 45.33, "
                 "eqntott 88.34, compress 53.13, sc 49.01, gcc 57.75; "
                 "suite average ~58%)\n";
    return 0;
}
