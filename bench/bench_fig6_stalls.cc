/**
 * @file
 * Figure 6: breakdown of execution-unit stall penalties. For each
 * machine model the CPI penalty contributed by each of the stall
 * conditions (instruction cache, load-use, reorder-buffer full, LSU
 * busy) is printed, averaged over the SPECint92 suite, plus the
 * per-benchmark rows behind the average.
 */

#include "bench_common.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;
    namespace tr = aurora::trace;

    bench::banner("Figure 6 - stall penalty breakdown (CPI)");

    const auto suite = tr::integerSuite();
    Table avg({"Model", "ICache", "Load", "ROB-Full", "LSU-Busy",
               "total stall", "CPI"});
    for (const auto &m : studyModels()) {
        const auto res = runSuite(m, suite, bench::runInsts());
        const double ic = res.avgStallCpi(StallCause::ICache);
        const double ld = res.avgStallCpi(StallCause::Load);
        const double rob = res.avgStallCpi(StallCause::RobFull);
        const double lsu = res.avgStallCpi(StallCause::LsuBusy);
        avg.row()
            .cell(m.name)
            .cell(ic, 3)
            .cell(ld, 3)
            .cell(rob, 3)
            .cell(lsu, 3)
            .cell(ic + ld + rob + lsu, 3)
            .cell(res.avgCpi(), 3);
    }
    avg.print(std::cout, "Figure 6 data (suite averages, dual issue, "
                         "17-cycle latency)");

    for (const auto &m : studyModels()) {
        Table t({"benchmark", "ICache", "Load", "ROB-Full",
                 "LSU-Busy", "CPI"});
        for (const auto &r :
             runSuite(m, suite, bench::runInsts()).runs) {
            t.row()
                .cell(r.benchmark)
                .cell(r.stallCpi(StallCause::ICache), 3)
                .cell(r.stallCpi(StallCause::Load), 3)
                .cell(r.stallCpi(StallCause::RobFull), 3)
                .cell(r.stallCpi(StallCause::LsuBusy), 3)
                .cell(r.cpi(), 3);
        }
        t.print(std::cout, "per-benchmark, model = " + m.name);
    }
    std::cout << "(paper: small model dominated by LSU-busy; base and "
                 "large dominated by I-miss and load stalls)\n";
    return 0;
}
