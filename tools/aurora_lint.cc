/**
 * @file
 * aurora_lint — static analyzer front end.
 *
 * Usage:
 *   aurora_lint lint-config [--budget RBE] [--json] [key=value ...]
 *   aurora_lint lint-trace FILE [--profile NAME] [--json]
 *   aurora_lint analyze-config [--profile NAME|int|fp|all]
 *                              [--budget RBE] [--min-ipc IPC]
 *                              [--json|--csv] [key=value ...]
 *   aurora_lint analyze-grid [--profile NAME|int|fp|all]
 *                            [--budget RBE] [--min-ipc IPC]
 *                            [--vary key=v1,v2,... ...] [--grid FILE]
 *                            [--json|--csv] [key=value ...]
 *   aurora_lint explain AURxxx
 *   aurora_lint list
 *
 * lint-config builds a machine exactly as aurora_sim would (same
 * key=value overrides, see src/core/config_io.hh), then runs every
 * static check — the cross-field lints, the structural deadlock
 * detector over the resource graph, and optionally the Table 2 RBE
 * area budget — without ever executing a cycle. lint-trace verifies a
 * captured trace file in one pass, optionally against the instruction
 * mix of a declared workload profile.
 *
 * analyze-config runs the Little's-law bottleneck model
 * (docs/model.md) on top of the lint: per-profile IPC bound, binding
 * resource, per-station demand/slack table, and the AUR040-AUR042
 * advisories. analyze-grid ranks a whole grid — the base spec crossed
 * with every --vary axis (or one point per line of --grid FILE) —
 * by predicted bound vs. Table 2 RBE and flags dominated points
 * (AUR043) that a guided search should skip. Both run zero simulated
 * cycles; advisories are warnings and never affect the exit status.
 *
 * explain prints the catalog entry behind any diagnostic ID (unknown
 * IDs list the nearest valid ones); list enumerates the catalog.
 *
 * Exit status: 0 clean (warnings allowed), 1 any error-severity
 * finding or a usage/SimError failure — so CI can gate on it.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/explore.hh"
#include "analyze/lint_config.hh"
#include "analyze/model.hh"
#include "analyze/verify_trace.hh"
#include "core/config_io.hh"
#include "trace/spec_profiles.hh"
#include "util/env.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: aurora_lint lint-config [--budget RBE] [--json]\n"
        << "                               [key=value ...]\n"
        << "       aurora_lint lint-trace FILE [--profile NAME] "
           "[--json]\n"
        << "       aurora_lint analyze-config [--profile "
           "NAME|int|fp|all]\n"
        << "                               [--budget RBE] "
           "[--min-ipc IPC]\n"
        << "                               [--json|--csv] "
           "[key=value ...]\n"
        << "       aurora_lint analyze-grid [--profile "
           "NAME|int|fp|all]\n"
        << "                               [--budget RBE] "
           "[--min-ipc IPC]\n"
        << "                               [--vary key=v1,v2,... "
           "...] [--grid FILE]\n"
        << "                               [--json|--csv] "
           "[key=value ...]\n"
        << "       aurora_lint explain AURxxx\n"
        << "       aurora_lint list\n";
    std::exit(2);
}

double
realOption(const std::string &option, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos == value.size())
            return v;
    } catch (const std::exception &) {
    }
    util::raiseError(util::SimErrorCode::BadConfig, "option ", option,
                     ": bad numeric value '", value, "'");
}

/** Print findings (text or JSON) and map them to an exit status. */
int
report(std::vector<analyze::Diagnostic> findings, bool json)
{
    if (json) {
        // Sorted so multi-finding output is byte-stable across
        // analyzer-internal emission-order changes — goldens and
        // diffs depend on it.
        analyze::sortDiagnostics(findings);
        std::cout << analyze::toJson(findings);
    } else if (findings.empty()) {
        std::cout << "clean\n";
    } else {
        std::cout << analyze::formatDiagnostics(findings);
    }
    return analyze::hasErrors(findings) ? 1 : 0;
}

/** --profile value -> list of workload profiles ("all" default). */
std::vector<trace::WorkloadProfile>
resolveProfiles(const std::string &name)
{
    std::vector<trace::WorkloadProfile> profiles;
    if (name.empty() || name == "all") {
        profiles = trace::integerSuite();
        for (const trace::WorkloadProfile &p : trace::floatSuite())
            profiles.push_back(p);
    } else if (name == "int") {
        profiles = trace::integerSuite();
    } else if (name == "fp") {
        profiles = trace::floatSuite();
    } else {
        profiles.push_back(trace::profileByName(name));
    }
    return profiles;
}

std::string
fixed(double v, int digits = 6)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

int
analyzeConfigCmd(const std::vector<std::string> &args)
{
    analyze::LintOptions lint_options;
    analyze::AdviseOptions advise;
    bool json = false;
    bool csv = false;
    std::string profile_name;
    std::string spec;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--budget" && i + 1 < args.size()) {
            ++i;
            lint_options.rbe_budget = realOption("--budget", args[i]);
        } else if (args[i] == "--min-ipc" && i + 1 < args.size()) {
            ++i;
            advise.min_ipc = realOption("--min-ipc", args[i]);
        } else if (args[i] == "--profile" && i + 1 < args.size()) {
            profile_name = args[++i];
        } else if (args[i] == "--json") {
            json = true;
        } else if (args[i] == "--csv") {
            csv = true;
        } else if (args[i].find('=') != std::string::npos) {
            spec += args[i] + " ";
        } else {
            std::cerr << "unknown argument: " << args[i] << "\n";
            usage();
        }
    }
    const core::MachineConfig machine = core::parseMachineSpec(spec);
    std::vector<analyze::Diagnostic> findings =
        analyze::lintConfig(machine, lint_options);
    if (analyze::hasErrors(findings)) {
        // The bound of an uninstantiable machine is meaningless;
        // report the lint verdict alone, same exit contract.
        if (!json && !csv)
            std::cout << "analyze-config: configuration rejected by "
                         "lint, model withheld\n";
        return report(std::move(findings), json);
    }

    const std::vector<trace::WorkloadProfile> profiles =
        resolveProfiles(profile_name);
    std::vector<analyze::ModelResult> results;
    results.reserve(profiles.size());
    for (const trace::WorkloadProfile &p : profiles)
        results.push_back(analyze::predictBound(machine, p));
    for (analyze::Diagnostic &d :
         analyze::adviseModel(machine, profiles, advise))
        findings.push_back(std::move(d));
    analyze::sortDiagnostics(findings);

    if (csv) {
        std::cout << "profile,ipc_bound,cpi_bound,binding,rbe\n";
        for (std::size_t i = 0; i < profiles.size(); ++i)
            std::cout << profiles[i].name << ','
                      << fixed(results[i].ipc_bound) << ','
                      << fixed(results[i].cpi_bound) << ','
                      << analyze::resourceName(results[i].binding)
                      << ',' << fixed(results[i].rbe_total, 1)
                      << '\n';
        return analyze::hasErrors(findings) ? 1 : 0;
    }
    if (json) {
        std::ostringstream out;
        out << "{\n  \"machine\": \""
            << core::describe(machine) << "\",\n  \"rbe\": "
            << fixed(analyze::pricedRbe(machine), 1)
            << ",\n  \"profiles\": [";
        for (std::size_t i = 0; i < profiles.size(); ++i) {
            const analyze::ModelResult &r = results[i];
            out << (i ? "," : "") << "\n    {\"name\": \""
                << profiles[i].name << "\", \"ipc_bound\": "
                << fixed(r.ipc_bound) << ", \"cpi_bound\": "
                << fixed(r.cpi_bound) << ", \"binding\": \""
                << analyze::resourceName(r.binding)
                << "\", \"resources\": [";
            for (std::size_t s = 0; s < analyze::NUM_RESOURCES; ++s) {
                const analyze::ResourceDemand &d = r.resources[s];
                out << (s ? "," : "") << "\n      {\"name\": \""
                    << analyze::resourceName(d.resource)
                    << "\", \"demand\": " << fixed(d.demand)
                    << ", \"capacity\": " << fixed(d.capacity)
                    << ", \"ipc_bound\": " << fixed(d.ipc_bound)
                    << ", \"slack\": " << fixed(d.slack)
                    << ", \"rbe\": " << fixed(d.rbe, 1) << "}";
            }
            out << "\n    ]}";
        }
        out << "\n  ],\n  \"diagnostics\": ";
        const std::string diags = analyze::toJson(findings);
        // Indent-free embed: toJson already ends with exactly one
        // newline; strip it so the document closes cleanly.
        out << diags.substr(0, diags.size() - 1) << "\n}\n";
        std::cout << out.str();
        return analyze::hasErrors(findings) ? 1 : 0;
    }

    std::cout << "machine: " << core::describe(machine) << "\n"
              << "priced area: "
              << fixed(analyze::pricedRbe(machine), 1) << " RBE\n";
    for (std::size_t i = 0; i < profiles.size(); ++i)
        std::cout << "profile " << profiles[i].name << ": "
                  << results[i].summary() << "\n";
    if (profiles.size() == 1) {
        // Single-profile runs get the full station table — the
        // audit view behind a surprising bound.
        std::cout << "\nresource      demand  capacity     bound  "
                     "slack\n";
        for (const analyze::ResourceDemand &d :
             results[0].resources) {
            char line[128];
            std::snprintf(
                line, sizeof(line), "%-12s %7.4f %9.3f %9.3f %6.2f\n",
                analyze::resourceName(d.resource), d.demand,
                d.capacity,
                std::min(d.ipc_bound, 9999.0),
                std::min(d.slack, 9999.0));
            std::cout << line;
        }
    }
    if (!findings.empty())
        std::cout << "\n" << analyze::formatDiagnostics(findings);
    return analyze::hasErrors(findings) ? 1 : 0;
}

/** One analyze-grid point: the override string that derives it. */
struct GridSpec
{
    std::string overrides; ///< appended to the base spec
    core::MachineConfig machine;
};

/** Cross the base spec with every --vary axis (first axis slowest). */
void
crossVary(const std::string &base,
          const std::vector<std::string> &vary_axes,
          std::vector<std::string> &out_specs)
{
    out_specs.push_back("");
    for (const std::string &axis : vary_axes) {
        const std::size_t eq = axis.find('=');
        if (eq == std::string::npos || eq == 0)
            util::raiseError(util::SimErrorCode::BadConfig,
                             "--vary expects key=v1,v2,... got '",
                             axis, "'");
        const std::string key = axis.substr(0, eq);
        std::vector<std::string> values;
        std::stringstream list(axis.substr(eq + 1));
        std::string v;
        while (std::getline(list, v, ','))
            if (!v.empty())
                values.push_back(v);
        if (values.empty())
            util::raiseError(util::SimErrorCode::BadConfig,
                             "--vary ", key, " lists no values");
        std::vector<std::string> next;
        next.reserve(out_specs.size() * values.size());
        for (const std::string &prefix : out_specs)
            for (const std::string &value : values)
                next.push_back(prefix.empty()
                                   ? key + "=" + value
                                   : prefix + " " + key + "=" +
                                         value);
        out_specs = std::move(next);
        if (out_specs.size() > 65536)
            util::raiseError(util::SimErrorCode::BadConfig,
                             "--vary cross product exceeds 65536 "
                             "points");
    }
    (void)base;
}

int
analyzeGridCmd(const std::vector<std::string> &args)
{
    analyze::LintOptions lint_options;
    analyze::ExploreOptions explore_options;
    bool json = false;
    bool csv = false;
    std::string profile_name;
    std::string base;
    std::string grid_file;
    std::vector<std::string> vary_axes;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--budget" && i + 1 < args.size()) {
            ++i;
            lint_options.rbe_budget = realOption("--budget", args[i]);
        } else if (args[i] == "--min-ipc" && i + 1 < args.size()) {
            ++i;
            explore_options.min_ipc =
                realOption("--min-ipc", args[i]);
        } else if (args[i] == "--profile" && i + 1 < args.size()) {
            profile_name = args[++i];
        } else if (args[i] == "--vary" && i + 1 < args.size()) {
            vary_axes.push_back(args[++i]);
        } else if (args[i] == "--grid" && i + 1 < args.size()) {
            grid_file = args[++i];
        } else if (args[i] == "--json") {
            json = true;
        } else if (args[i] == "--csv") {
            csv = true;
        } else if (args[i].find('=') != std::string::npos) {
            base += args[i] + " ";
        } else {
            std::cerr << "unknown argument: " << args[i] << "\n";
            usage();
        }
    }

    std::vector<std::string> point_specs;
    if (!grid_file.empty()) {
        std::ifstream in(grid_file);
        if (!in)
            util::raiseError(util::SimErrorCode::BadConfig,
                             "--grid: cannot open '", grid_file, "'");
        std::string line;
        while (std::getline(in, line)) {
            const std::size_t start =
                line.find_first_not_of(" \t\r");
            if (start == std::string::npos || line[start] == '#')
                continue;
            point_specs.push_back(line.substr(start));
        }
        if (point_specs.empty())
            util::raiseError(util::SimErrorCode::BadConfig,
                             "--grid: '", grid_file,
                             "' lists no points");
    } else {
        crossVary(base, vary_axes, point_specs);
    }

    std::vector<GridSpec> points;
    points.reserve(point_specs.size());
    std::vector<core::MachineConfig> machines;
    machines.reserve(point_specs.size());
    for (const std::string &overrides : point_specs) {
        GridSpec point;
        point.overrides = overrides;
        point.machine =
            core::parseMachineSpec(base + " " + overrides);
        machines.push_back(point.machine);
        points.push_back(std::move(point));
    }

    const std::vector<trace::WorkloadProfile> profiles =
        resolveProfiles(profile_name);
    analyze::ExploreResult explored =
        analyze::exploreGrid(machines, profiles, explore_options);

    // Per-point lint, errors only: a grid point that cannot be
    // instantiated must fail the run, but repeating every sizing
    // warning across hundreds of near-identical points would bury
    // the ranking. lint-config exists for the full per-point story.
    std::vector<analyze::Diagnostic> findings;
    for (std::size_t i = 0; i < machines.size(); ++i) {
        for (analyze::Diagnostic &d :
             analyze::lintConfig(machines[i], lint_options)) {
            if (d.severity != analyze::Severity::Error)
                continue;
            d.job = static_cast<int>(i);
            findings.push_back(std::move(d));
        }
    }
    for (analyze::Diagnostic &d : explored.diagnostics)
        findings.push_back(std::move(d));
    analyze::sortDiagnostics(findings);

    auto point_spec = [&](std::size_t i) -> std::string {
        if (!points[i].overrides.empty())
            return points[i].overrides;
        std::string trimmed = base;
        while (!trimmed.empty() && trimmed.back() == ' ')
            trimmed.pop_back();
        return trimmed.empty() ? "baseline" : trimmed;
    };

    if (csv) {
        std::cout << "point,rbe,ipc_bound,binding,dominated,"
                     "dominated_by,spec\n";
        for (const analyze::GridPointModel &p : explored.points)
            std::cout << p.index << ',' << fixed(p.rbe, 1) << ','
                      << fixed(p.bound) << ','
                      << analyze::resourceName(p.binding) << ','
                      << (p.dominated ? 1 : 0) << ','
                      << (p.dominated
                              ? std::to_string(p.dominated_by)
                              : std::string())
                      << ',' << point_spec(p.index) << '\n';
        return analyze::hasErrors(findings) ? 1 : 0;
    }
    if (json) {
        std::ostringstream out;
        out << "{\n  \"base\": \"" << base << "\",\n  \"points\": [";
        for (std::size_t i = 0; i < explored.points.size(); ++i) {
            const analyze::GridPointModel &p = explored.points[i];
            out << (i ? "," : "") << "\n    {\"index\": " << p.index
                << ", \"spec\": \"" << point_spec(p.index)
                << "\", \"rbe\": " << fixed(p.rbe, 1)
                << ", \"ipc_bound\": " << fixed(p.bound)
                << ", \"binding\": \""
                << analyze::resourceName(p.binding)
                << "\", \"dominated\": "
                << (p.dominated ? "true" : "false");
            if (p.dominated)
                out << ", \"dominated_by\": " << p.dominated_by;
            out << "}";
        }
        out << "\n  ],\n  \"frontier\": [";
        for (std::size_t i = 0; i < explored.frontier.size(); ++i)
            out << (i ? ", " : "") << explored.frontier[i];
        out << "],\n  \"diagnostics\": ";
        const std::string diags = analyze::toJson(findings);
        out << diags.substr(0, diags.size() - 1) << "\n}\n";
        std::cout << out.str();
        return analyze::hasErrors(findings) ? 1 : 0;
    }

    std::cout << "grid: " << explored.points.size() << " points, "
              << explored.frontier.size()
              << " on the predicted frontier, "
              << explored.points.size() - explored.frontier.size()
              << " dominated\n";
    for (const analyze::GridPointModel &p : explored.points) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "point %3zu  %8.1f RBE  bound %7.3f  %-11s  ",
                      p.index, p.rbe, p.bound,
                      analyze::resourceName(p.binding));
        std::cout << line
                  << (p.dominated
                          ? "dominated by " +
                                std::to_string(p.dominated_by)
                          : std::string("frontier"))
                  << "  [" << point_spec(p.index) << "]\n";
    }
    if (!findings.empty())
        std::cout << "\n" << analyze::formatDiagnostics(findings);
    return analyze::hasErrors(findings) ? 1 : 0;
}

int
lintConfigCmd(const std::vector<std::string> &args)
{
    analyze::LintOptions options;
    bool json = false;
    std::string spec;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--budget" && i + 1 < args.size()) {
            ++i;
            options.rbe_budget = realOption("--budget", args[i]);
        } else if (args[i] == "--json") {
            json = true;
        } else if (args[i].find('=') != std::string::npos) {
            spec += args[i] + " ";
        } else {
            std::cerr << "unknown argument: " << args[i] << "\n";
            usage();
        }
    }
    const core::MachineConfig machine = core::parseMachineSpec(spec);
    return report(analyze::lintConfig(machine, options), json);
}

int
lintTraceCmd(const std::vector<std::string> &args)
{
    std::string path;
    std::string profile_name;
    bool json = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--profile" && i + 1 < args.size()) {
            profile_name = args[++i];
        } else if (args[i] == "--json") {
            json = true;
        } else if (path.empty() && !args[i].empty() &&
                   args[i][0] != '-') {
            path = args[i];
        } else {
            std::cerr << "unknown argument: " << args[i] << "\n";
            usage();
        }
    }
    if (path.empty())
        usage();

    trace::WorkloadProfile profile;
    analyze::TraceCheckOptions options;
    if (!profile_name.empty()) {
        profile = trace::profileByName(profile_name);
        options.profile = &profile;
    }
    const analyze::TraceReport result =
        analyze::verifyTrace(path, options);
    if (!json)
        std::cout << result.summary();
    return report(result.diagnostics, json);
}

int
explainCmd(const std::string &id)
{
    const analyze::DiagnosticInfo *info = analyze::findDiagnostic(id);
    if (info == nullptr) {
        std::string nearest;
        for (const std::string &candidate :
             analyze::nearestDiagnosticIds(id))
            nearest += (nearest.empty() ? "" : ", ") + candidate;
        std::cerr << "aurora_lint: unknown diagnostic '" << id
                  << "' (nearest: " << nearest
                  << "; 'aurora_lint list' shows all)\n";
        return 1;
    }
    std::cout << info->id << " (" << analyze::severityName(info->severity)
              << "): " << info->title << "\n\n"
              << info->rationale << "\n\nfix: " << info->hint << "\n";
    return 0;
}

int
listCmd()
{
    for (const analyze::DiagnosticInfo &info : analyze::catalog())
        std::cout << info.id << "  "
                  << analyze::severityName(info.severity) << "  "
                  << info.title << "\n";
    return 0;
}

int
run(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    if (command == "lint-config")
        return lintConfigCmd(args);
    if (command == "lint-trace")
        return lintTraceCmd(args);
    if (command == "analyze-config")
        return analyzeConfigCmd(args);
    if (command == "analyze-grid")
        return analyzeGridCmd(args);
    if (command == "explain") {
        if (args.size() != 1)
            usage();
        return explainCmd(args[0]);
    }
    if (command == "list")
        return listCmd();
    if (command == "--help" || command == "-h")
        usage();
    std::cerr << "unknown command: " << command << "\n";
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const util::SimError &e) {
        std::cerr << "aurora_lint: " << e.what() << "\n";
        return 1;
    }
}
