/**
 * @file
 * aurora_lint — static analyzer front end.
 *
 * Usage:
 *   aurora_lint lint-config [--budget RBE] [--json] [key=value ...]
 *   aurora_lint lint-trace FILE [--profile NAME] [--json]
 *   aurora_lint explain AURxxx
 *   aurora_lint list
 *
 * lint-config builds a machine exactly as aurora_sim would (same
 * key=value overrides, see src/core/config_io.hh), then runs every
 * static check — the cross-field lints, the structural deadlock
 * detector over the resource graph, and optionally the Table 2 RBE
 * area budget — without ever executing a cycle. lint-trace verifies a
 * captured trace file in one pass, optionally against the instruction
 * mix of a declared workload profile. explain prints the catalog
 * entry behind any diagnostic ID; list enumerates the catalog.
 *
 * Exit status: 0 clean (warnings allowed), 1 any error-severity
 * finding or a usage/SimError failure — so CI can gate on it.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/lint_config.hh"
#include "analyze/verify_trace.hh"
#include "core/config_io.hh"
#include "trace/spec_profiles.hh"
#include "util/env.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: aurora_lint lint-config [--budget RBE] [--json]\n"
        << "                               [key=value ...]\n"
        << "       aurora_lint lint-trace FILE [--profile NAME] "
           "[--json]\n"
        << "       aurora_lint explain AURxxx\n"
        << "       aurora_lint list\n";
    std::exit(2);
}

double
realOption(const std::string &option, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos == value.size())
            return v;
    } catch (const std::exception &) {
    }
    util::raiseError(util::SimErrorCode::BadConfig, "option ", option,
                     ": bad numeric value '", value, "'");
}

/** Print findings (text or JSON) and map them to an exit status. */
int
report(const std::vector<analyze::Diagnostic> &findings, bool json)
{
    if (json) {
        std::cout << analyze::toJson(findings);
    } else if (findings.empty()) {
        std::cout << "clean\n";
    } else {
        std::cout << analyze::formatDiagnostics(findings);
    }
    return analyze::hasErrors(findings) ? 1 : 0;
}

int
lintConfigCmd(const std::vector<std::string> &args)
{
    analyze::LintOptions options;
    bool json = false;
    std::string spec;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--budget" && i + 1 < args.size()) {
            ++i;
            options.rbe_budget = realOption("--budget", args[i]);
        } else if (args[i] == "--json") {
            json = true;
        } else if (args[i].find('=') != std::string::npos) {
            spec += args[i] + " ";
        } else {
            std::cerr << "unknown argument: " << args[i] << "\n";
            usage();
        }
    }
    const core::MachineConfig machine = core::parseMachineSpec(spec);
    return report(analyze::lintConfig(machine, options), json);
}

int
lintTraceCmd(const std::vector<std::string> &args)
{
    std::string path;
    std::string profile_name;
    bool json = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--profile" && i + 1 < args.size()) {
            profile_name = args[++i];
        } else if (args[i] == "--json") {
            json = true;
        } else if (path.empty() && !args[i].empty() &&
                   args[i][0] != '-') {
            path = args[i];
        } else {
            std::cerr << "unknown argument: " << args[i] << "\n";
            usage();
        }
    }
    if (path.empty())
        usage();

    trace::WorkloadProfile profile;
    analyze::TraceCheckOptions options;
    if (!profile_name.empty()) {
        profile = trace::profileByName(profile_name);
        options.profile = &profile;
    }
    const analyze::TraceReport result =
        analyze::verifyTrace(path, options);
    if (!json)
        std::cout << result.summary();
    return report(result.diagnostics, json);
}

int
explainCmd(const std::string &id)
{
    const analyze::DiagnosticInfo *info = analyze::findDiagnostic(id);
    if (info == nullptr) {
        std::cerr << "aurora_lint: unknown diagnostic '" << id
                  << "' (try 'aurora_lint list')\n";
        return 1;
    }
    std::cout << info->id << " (" << analyze::severityName(info->severity)
              << "): " << info->title << "\n\n"
              << info->rationale << "\n\nfix: " << info->hint << "\n";
    return 0;
}

int
listCmd()
{
    for (const analyze::DiagnosticInfo &info : analyze::catalog())
        std::cout << info.id << "  "
                  << analyze::severityName(info.severity) << "  "
                  << info.title << "\n";
    return 0;
}

int
run(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    if (command == "lint-config")
        return lintConfigCmd(args);
    if (command == "lint-trace")
        return lintTraceCmd(args);
    if (command == "explain") {
        if (args.size() != 1)
            usage();
        return explainCmd(args[0]);
    }
    if (command == "list")
        return listCmd();
    if (command == "--help" || command == "-h")
        usage();
    std::cerr << "unknown command: " << command << "\n";
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const util::SimError &e) {
        std::cerr << "aurora_lint: " << e.what() << "\n";
        return 1;
    }
}
