/**
 * @file
 * aurora_obs_check — validator for the telemetry exporters' output.
 *
 * Usage:
 *   aurora_obs_check trace FILE        validate a Chrome trace file
 *   aurora_obs_check stats FILE        validate a --stats-json doc
 *   aurora_obs_check csv FILE          validate a --stats-csv table
 *   aurora_obs_check spans FILE        validate aurora.spans.v1 NDJSON
 *   aurora_obs_check flight FILE       validate aurora.flight.v1 NDJSON
 *   aurora_obs_check postmortem DIR [N]  reconstruct dead shards'
 *                                      last N events next to the
 *                                      coordinator's fence records
 *
 * `trace` checks what Perfetto/chrome://tracing require to load a
 * file: valid JSON, a traceEvents array, name/ph/ts on every event,
 * non-negative durations on complete spans, and non-decreasing
 * timestamps per (pid, tid) track — plus, for causal traces, that
 * every event carrying span args has one uniform trace id and that
 * every non-root parent id names a span present in the file. `stats`
 * checks the schema tag and the internal consistency of every
 * exported histogram (bucket sum + overflow == count, p50 <= p95 <=
 * max). `csv` checks rectangular shape. `spans`/`flight` run the
 * tolerant NDJSON readers (torn tail dropped, mid-file corruption
 * reported with its byte offset) plus per-format invariants
 * (strictly increasing flight seq, nonzero span ids). Exit 0 =
 * valid; exit 1 prints the first violation. The obs stage of
 * scripts/check.sh runs these against fresh exports.
 */

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight.hh"
#include "obs/trace.hh"
#include "telemetry/export.hh"
#include "telemetry/json.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;

[[noreturn]] void
usage()
{
    std::cerr << "usage: aurora_obs_check "
                 "trace|stats|csv|spans|flight FILE\n"
                 "       aurora_obs_check postmortem DIR [N]\n";
    std::exit(2);
}

[[noreturn]] void
fail(const std::string &what)
{
    std::cerr << "aurora_obs_check: " << what << "\n";
    std::exit(1);
}

std::string
slurp(const std::string &path)
{
    if (path == "-") {
        std::ostringstream os;
        os << std::cin.rdbuf();
        return os.str();
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fail("cannot open '" + path + "'");
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

const telemetry::JsonValue &
member(const telemetry::JsonValue &object, const std::string &key,
       const std::string &where)
{
    const telemetry::JsonValue *value = object.find(key);
    if (!value)
        fail(where + ": missing member '" + key + "'");
    return *value;
}

double
number(const telemetry::JsonValue &object, const std::string &key,
       const std::string &where)
{
    const telemetry::JsonValue &value = member(object, key, where);
    if (!value.isNumber())
        fail(where + ": member '" + key + "' is not a number");
    return value.number;
}

telemetry::JsonValue
parse(const std::string &path)
{
    std::string error;
    const auto doc = telemetry::parseJson(slurp(path), &error);
    if (!doc)
        fail("'" + path + "' is not valid JSON: " + error);
    return *doc;
}

int
checkTrace(const std::string &path)
{
    const telemetry::JsonValue doc = parse(path);
    if (!doc.isObject())
        fail("trace document is not a JSON object");
    const telemetry::JsonValue &events =
        member(doc, "traceEvents", "trace document");
    if (!events.isArray())
        fail("'traceEvents' is not an array");

    // Trace viewers sort tracks by (pid, tid); within one track the
    // exporters must emit time-ordered events.
    std::map<std::pair<double, double>, double> last_ts;
    std::size_t spans = 0;
    // Causal parentage: every span id seen, every non-root parent
    // claimed, and the (single) trace id they must all share.
    const std::string ROOT_PARENT = "0x0000000000000000";
    std::set<std::string> span_ids;
    std::vector<std::pair<std::string, std::size_t>> parent_refs;
    std::string trace_id;
    std::size_t causal = 0;
    for (std::size_t i = 0; i < events.array.size(); ++i) {
        const std::string where = "event " + std::to_string(i);
        const telemetry::JsonValue &e = events.array[i];
        if (!e.isObject())
            fail(where + " is not an object");
        if (!member(e, "name", where).isString())
            fail(where + ": 'name' is not a string");
        const telemetry::JsonValue &ph = member(e, "ph", where);
        if (!ph.isString() || ph.string.size() != 1)
            fail(where + ": 'ph' is not a one-character string");
        const double ts = number(e, "ts", where);
        if (ph.string == "M")
            continue; // metadata events are timeless
        const double pid = number(e, "pid", where);
        const double tid = number(e, "tid", where);
        const auto track = std::make_pair(pid, tid);
        const auto it = last_ts.find(track);
        if (it != last_ts.end() && ts < it->second)
            fail(where + ": ts " + std::to_string(ts) +
                 " decreases on track (pid " + std::to_string(pid) +
                 ", tid " + std::to_string(tid) + ") after " +
                 std::to_string(it->second));
        last_ts[track] = ts;
        if (ph.string == "X") {
            ++spans;
            if (number(e, "dur", where) < 0.0)
                fail(where + ": complete span has negative dur");
        }
        const telemetry::JsonValue *args = e.find("args");
        if (!args || !args->isObject())
            continue;
        const telemetry::JsonValue *sid = args->find("span_id");
        if (!sid)
            continue; // a plain (non-causal) exporter event
        if (!sid->isString())
            fail(where + ": 'span_id' is not a string");
        if (sid->string == ROOT_PARENT)
            fail(where + ": span id is zero");
        ++causal;
        span_ids.insert(sid->string);
        const telemetry::JsonValue *tr = args->find("trace_id");
        if (!tr || !tr->isString())
            fail(where + ": span carries span_id but no trace_id");
        if (trace_id.empty())
            trace_id = tr->string;
        else if (tr->string != trace_id)
            fail(where + ": trace id " + tr->string +
                 " differs from the grid's " + trace_id);
        const telemetry::JsonValue *par = args->find("parent_id");
        if (!par || !par->isString())
            fail(where + ": span carries span_id but no parent_id");
        if (par->string != ROOT_PARENT)
            parent_refs.emplace_back(par->string, i);
    }
    for (const auto &[parent, index] : parent_refs)
        if (span_ids.count(parent) == 0)
            fail("event " + std::to_string(index) + ": parent span " +
                 parent + " does not exist in this trace");
    std::cout << "trace ok: " << events.array.size() << " events ("
              << spans << " spans) on " << last_ts.size()
              << " track(s)";
    if (causal != 0)
        std::cout << "; " << causal << " causal span(s) of trace "
                  << trace_id << ", parentage closed";
    std::cout << "\n";
    return 0;
}

int
checkSpans(const std::string &path)
{
    obs::LoadedSpans loaded;
    try {
        loaded = obs::loadSpanFile(path);
    } catch (const util::SimError &e) {
        fail(e.what());
    }
    std::set<std::uint64_t> traces;
    for (std::size_t i = 0; i < loaded.spans.size(); ++i) {
        const obs::Span &s = loaded.spans[i];
        if (s.span_id == 0)
            fail("span " + std::to_string(i) + ": zero span id");
        if (s.trace_id == 0)
            fail("span " + std::to_string(i) + ": zero trace id");
        if (s.name.empty())
            fail("span " + std::to_string(i) + ": empty name");
        traces.insert(s.trace_id);
    }
    std::cout << "spans ok: " << loaded.spans.size() << " span(s), "
              << traces.size() << " trace(s)"
              << (loaded.dropped_tail ? ", torn tail dropped" : "")
              << "\n";
    return 0;
}

int
checkFlight(const std::string &path)
{
    obs::LoadedFlight loaded;
    try {
        loaded = obs::loadFlightFile(path);
    } catch (const util::SimError &e) {
        fail(e.what());
    }
    if (loaded.events.empty())
        fail("'" + path + "' holds no flight events");
    std::uint64_t last_seq = 0;
    for (std::size_t i = 0; i < loaded.events.size(); ++i) {
        const obs::FlightEvent &e = loaded.events[i];
        if (e.event.empty())
            fail("flight event " + std::to_string(i) +
                 ": empty event name");
        // Monotone, not strictly increasing: a signal-path
        // flight.dump marker cannot claim a sequence number (no
        // atomics-with-ring update from a handler), so it shares the
        // seq of the next recorded event.
        if (i != 0 && e.seq < last_seq)
            fail("flight event " + std::to_string(i) + ": seq " +
                 std::to_string(e.seq) + " goes backwards after " +
                 std::to_string(last_seq));
        last_seq = e.seq;
    }
    std::cout << "flight ok: " << loaded.events.size()
              << " event(s), last seq " << last_seq
              << (loaded.dropped_tail ? ", torn tail dropped" : "")
              << "\n";
    return 0;
}

/** "epoch=42 pid=..." → 42; 0 when the key is absent. */
std::uint64_t
detailEpoch(const std::string &detail)
{
    const std::size_t at = detail.find("epoch=");
    if (at == std::string::npos)
        return 0;
    return std::strtoull(detail.c_str() + at + 6, nullptr, 10);
}

/**
 * Post-mortem reader: for every fence the coordinator recorded, show
 * the fenced incarnation's last N flight events next to the fence
 * decision — the "what was the shard doing when the coordinator gave
 * up on it" view. DIR is a swarm flight directory (swarm.flight +
 * shard-e<epoch>.flight files).
 */
int
postmortem(const std::string &dir, std::size_t last_n)
{
    obs::LoadedFlight coord;
    try {
        coord = obs::loadFlightFile(dir + "/swarm.flight");
    } catch (const util::SimError &e) {
        fail(e.what());
    }
    std::size_t fences = 0;
    for (const obs::FlightEvent &e : coord.events) {
        if (e.event != "lease.fence")
            continue;
        ++fences;
        std::cout << "fence @" << e.ms << "ms seq " << e.seq << " ["
                  << e.code << "] " << e.detail << "\n";
        const std::uint64_t epoch = detailEpoch(e.detail);
        if (epoch == 0) {
            std::cout << "  (no epoch in the fence record)\n";
            continue;
        }
        const std::string shard_path =
            dir + "/shard-e" + std::to_string(epoch) + ".flight";
        obs::LoadedFlight shard;
        try {
            shard = obs::loadFlightFile(shard_path);
        } catch (const util::SimError &) {
            // A worker SIGKILLed before its handshake never opened a
            // flight file — the fence record is all there is.
            std::cout << "  (no flight file for epoch " << epoch
                      << ": the worker died before its handshake)\n";
            continue;
        }
        const std::size_t begin =
            shard.events.size() > last_n ? shard.events.size() - last_n
                                         : 0;
        for (std::size_t i = begin; i < shard.events.size(); ++i) {
            const obs::FlightEvent &s = shard.events[i];
            std::cout << "  shard e" << epoch << " @" << s.ms
                      << "ms seq " << s.seq << " " << s.event;
            if (!s.code.empty())
                std::cout << " [" << s.code << "]";
            if (!s.detail.empty())
                std::cout << " " << s.detail;
            std::cout << (shard.dropped_tail &&
                                  i + 1 == shard.events.size()
                              ? " (tail torn after this)"
                              : "")
                      << "\n";
        }
    }
    std::cout << "postmortem: " << fences << " fence(s) in "
              << coord.events.size() << " coordinator event(s)\n";
    return 0;
}

void
checkHistogram(const telemetry::JsonValue &h, const std::string &where)
{
    const double count = number(h, "count", where);
    const double overflow = number(h, "overflow", where);
    const telemetry::JsonValue &buckets =
        member(h, "buckets", where);
    if (!buckets.isArray())
        fail(where + ": 'buckets' is not an array");
    double in_buckets = 0.0;
    for (const telemetry::JsonValue &b : buckets.array) {
        if (!b.isNumber())
            fail(where + ": bucket is not a number");
        in_buckets += b.number;
    }
    if (in_buckets + overflow != count)
        fail(where + ": bucket sum " + std::to_string(in_buckets) +
             " + overflow " + std::to_string(overflow) +
             " != count " + std::to_string(count));
    const double p50 = number(h, "p50", where);
    const double p95 = number(h, "p95", where);
    const double max = number(h, "max", where);
    if (p50 > p95 || p95 > max)
        fail(where + ": percentile order violated (p50 " +
             std::to_string(p50) + ", p95 " + std::to_string(p95) +
             ", max " + std::to_string(max) + ")");
}

void
checkRun(const telemetry::JsonValue &run, const std::string &where)
{
    if (!run.isObject())
        fail(where + " is not an object");
    if (!member(run, "model", where).isString())
        fail(where + ": 'model' is not a string");
    number(run, "instructions", where);
    number(run, "cycles", where);
    number(run, "cpi", where);
    const telemetry::JsonValue &occ =
        member(run, "occupancy", where);
    for (const std::string res : {"rob", "mshr", "fp_instq",
                                  "fp_loadq", "fp_storeq"}) {
        const std::string owhere = where + ".occupancy." + res;
        const telemetry::JsonValue &o = member(occ, res, owhere);
        const double p50 = number(o, "p50", owhere);
        const double p95 = number(o, "p95", owhere);
        const double max = number(o, "max", owhere);
        if (p50 > p95 || p95 > max)
            fail(owhere + ": percentile order violated");
    }
    const telemetry::JsonValue *metrics = run.find("metrics");
    if (!metrics)
        return;
    const telemetry::JsonValue &counters =
        member(*metrics, "counters", where + ".metrics");
    for (const telemetry::JsonValue &c : counters.array)
        number(c, "value", where + ".metrics.counters");
    const telemetry::JsonValue &histograms =
        member(*metrics, "histograms", where + ".metrics");
    for (std::size_t i = 0; i < histograms.array.size(); ++i)
        checkHistogram(histograms.array[i],
                       where + ".metrics.histograms[" +
                           std::to_string(i) + "]");
}

int
checkStats(const std::string &path)
{
    const telemetry::JsonValue doc = parse(path);
    if (!doc.isObject())
        fail("stats document is not a JSON object");
    const telemetry::JsonValue &schema =
        member(doc, "schema", "stats document");
    if (!schema.isString())
        fail("'schema' is not a string");
    std::size_t runs = 0;
    if (schema.string == telemetry::RUN_SCHEMA) {
        checkRun(member(doc, "run", "stats document"), "run");
        runs = 1;
    } else if (schema.string == telemetry::SUITE_SCHEMA) {
        const telemetry::JsonValue &list =
            member(doc, "runs", "stats document");
        if (!list.isArray())
            fail("'runs' is not an array");
        for (std::size_t i = 0; i < list.array.size(); ++i)
            checkRun(list.array[i],
                     "runs[" + std::to_string(i) + "]");
        runs = list.array.size();
    } else {
        fail("unknown schema '" + schema.string + "'");
    }
    std::cout << "stats ok: schema " << schema.string << ", " << runs
              << " run(s)\n";
    return 0;
}

/** Split one CSV line; quoted fields may contain commas/quotes. */
std::size_t
csvFieldCount(const std::string &line, std::size_t line_no)
{
    std::size_t fields = 1;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"')
                    ++i; // escaped quote
                else
                    quoted = false;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            ++fields;
        }
    }
    if (quoted)
        fail("line " + std::to_string(line_no) +
             ": unterminated quoted field");
    return fields;
}

int
checkCsv(const std::string &path)
{
    std::istringstream in(slurp(path));
    std::string line;
    std::size_t columns = 0;
    std::size_t rows = 0;
    for (std::size_t line_no = 1; std::getline(in, line); ++line_no) {
        if (line.empty())
            continue;
        const std::size_t fields = csvFieldCount(line, line_no);
        if (line_no == 1)
            columns = fields;
        else if (fields != columns)
            fail("line " + std::to_string(line_no) + ": " +
                 std::to_string(fields) + " fields, header has " +
                 std::to_string(columns));
        ++rows;
    }
    if (rows == 0)
        fail("empty CSV document");
    std::cout << "csv ok: " << rows - 1 << " row(s) x " << columns
              << " column(s)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    const std::string mode = argv[1];
    const std::string path = argv[2];
    if (mode == "postmortem") {
        std::size_t last_n = 8;
        if (argc == 4)
            last_n = std::strtoull(argv[3], nullptr, 10);
        else if (argc != 3)
            usage();
        return postmortem(path, last_n);
    }
    if (argc != 3)
        usage();
    if (mode == "trace")
        return checkTrace(path);
    if (mode == "stats")
        return checkStats(path);
    if (mode == "csv")
        return checkCsv(path);
    if (mode == "spans")
        return checkSpans(path);
    if (mode == "flight")
        return checkFlight(path);
    usage();
}
