/**
 * @file
 * aurora_serve — the resident multi-tenant sweep daemon.
 *
 * Usage:
 *   aurora_serve --socket PATH --spool DIR [options]
 *
 * Options:
 *   --socket PATH       Unix-domain socket to listen on (required)
 *   --spool DIR         durable spool directory (required); every
 *                       accepted grid's manifest + journal lives here
 *                       and is resumed on restart
 *   --workers N         worker threads (default AURORA_JOBS / cores)
 *   --quota-grids N     resident grids per tenant (default 8)
 *   --quota-jobs N      queued+running jobs per tenant (default 4096)
 *   --queue-depth N     global queued+running job cap (default 16384)
 *   --grid-jobs N       max jobs in one submission (default 2048)
 *   --progress-every N  heartbeat cadence in jobs (default: grid/4)
 *   --shards N          horizontal-scale backend: deal each grid to
 *                       N aurora_shardd processes under lease-fenced
 *                       supervision instead of in-process workers
 *   --shardd PATH       aurora_shardd binary (required with --shards)
 *   --shard-lease-ms N  shard lease; must exceed the worst-case
 *                       single-job wall time (default 10000)
 *   --quiet             suppress lifecycle log lines
 *
 * Lifecycle: runs until SIGTERM/SIGINT, then drains — running jobs
 * finish and are journaled, queued jobs stay persisted in the spool,
 * new submissions are refused with AUR204 — and exits 0. SIGKILL is
 * also survivable: the next incarnation rescans the spool, replays
 * journaled outcomes bit-exactly, and re-queues the missing jobs
 * (clients re-attach by fingerprint). See docs/service.md.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "serve/server.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: aurora_serve --socket PATH --spool DIR\n"
        << "                    [--workers N] [--quota-grids N]\n"
        << "                    [--quota-jobs N] [--queue-depth N]\n"
        << "                    [--grid-jobs N] [--progress-every N]\n"
        << "                    [--shards N --shardd PATH]\n"
        << "                    [--shard-lease-ms N] [--quiet]\n";
    std::exit(2);
}

std::size_t
numericOption(const std::string &option, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        util::raiseError(util::SimErrorCode::BadConfig, "option ",
                         option, ": bad numeric value '", value, "'");
    return static_cast<std::size_t>(parsed);
}

int
run(int argc, char **argv)
{
    serve::ServerConfig config;
    config.verbose = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            config.socket_path = argv[++i];
        } else if (arg == "--spool" && i + 1 < argc) {
            config.spool_dir = argv[++i];
        } else if (arg == "--workers" && i + 1 < argc) {
            config.workers =
                static_cast<unsigned>(numericOption(arg, argv[++i]));
        } else if (arg == "--quota-grids" && i + 1 < argc) {
            config.limits.grids_per_tenant =
                numericOption(arg, argv[++i]);
        } else if (arg == "--quota-jobs" && i + 1 < argc) {
            config.limits.jobs_per_tenant =
                numericOption(arg, argv[++i]);
        } else if (arg == "--queue-depth" && i + 1 < argc) {
            config.limits.total_jobs = numericOption(arg, argv[++i]);
        } else if (arg == "--grid-jobs" && i + 1 < argc) {
            config.limits.jobs_per_grid =
                numericOption(arg, argv[++i]);
        } else if (arg == "--progress-every" && i + 1 < argc) {
            config.progress_every = numericOption(arg, argv[++i]);
        } else if (arg == "--shards" && i + 1 < argc) {
            config.shards =
                static_cast<unsigned>(numericOption(arg, argv[++i]));
        } else if (arg == "--shardd" && i + 1 < argc) {
            config.shardd_path = argv[++i];
        } else if (arg == "--shard-lease-ms" && i + 1 < argc) {
            config.shard_lease_ms = numericOption(arg, argv[++i]);
        } else if (arg == "--quiet") {
            config.verbose = false;
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage();
        }
    }
    if (config.socket_path.empty() || config.spool_dir.empty())
        usage();

    serve::Server server(std::move(config));
    server.installSignalHandlers();
    server.run();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const util::SimError &e) {
        std::cerr << "aurora_serve: " << e.what() << "\n";
        return 1;
    }
}
