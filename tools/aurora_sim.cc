/**
 * @file
 * aurora_sim — the command-line simulator driver.
 *
 * Usage:
 *   aurora_sim [options] [key=value ...]
 *
 * Options:
 *   --bench NAME      benchmark (default espresso); 'int' or 'fp'
 *                     run the whole suite; 'all' runs both suites
 *   --insts N         instructions per run (default 400000)
 *   --trace FILE      replay a captured trace file instead of a
 *                     synthetic benchmark
 *   --csv             emit machine-readable CSV summary
 *   --describe        print the fully resolved configuration and exit
 *   --pipeline-trace N  print per-cycle issue/stall/retire events for
 *                     the first N cycles (single benchmark only)
 *   --cycle-budget N  abort any run that reaches simulated cycle N
 *                     with a CycleBudgetExceeded error (0 = unlimited)
 *   --journal FILE    append every completed run to a crash-safe
 *                     sweep journal (synthetic benchmarks only)
 *   --resume          with --journal: replay completed runs from the
 *                     journal and execute only the missing ones
 *
 * Remaining key=value arguments configure the machine; see
 * `src/core/config_io.hh` (model=, icache=, mshr=, latency=,
 * fp_policy=, ...).
 *
 * Error handling: recoverable user errors (bad key=value, corrupt
 * trace file, a machine that stops making forward progress — see
 * docs/robustness.md) surface as util::SimError; main() catches them
 * and exits 1 with a one-line diagnostic instead of a stack trace.
 *
 * Examples:
 *   aurora_sim --bench gcc model=large latency=35
 *   aurora_sim --bench int model=baseline mshr=4 icache=4096
 *   aurora_sim --bench fp fp_policy=inorder
 *   aurora_sim --bench nasa7 --cycle-budget 2000000 fp_buses=1
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/config_io.hh"
#include "core/pipeline_trace.hh"
#include "core/report.hh"
#include "core/simulator.hh"
#include "harness/sweep.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"
#include "trace/trace_io.hh"
#include "util/env.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: aurora_sim [--bench NAME|int|fp|all] [--insts N]\n"
        << "                  [--trace FILE] [--csv] [--describe]\n"
        << "                  [--pipeline-trace N] [--cycle-budget N]\n"
        << "                  [--journal FILE] [--resume]\n"
        << "                  [key=value ...]\n";
    std::exit(2);
}

/**
 * Parse a numeric option strictly: strtoull's silent acceptance of
 * "2OOOOO" as 2 would misconfigure a run without a trace, so anything
 * but a complete non-negative decimal is a BadConfig error.
 */
Count
numericOption(const std::string &option, const std::string &value)
{
    const auto parsed = parseCount(value);
    if (!parsed)
        util::raiseError(util::SimErrorCode::BadConfig, "option ",
                         option, ": bad numeric value '", value,
                         "' (accepted: a non-negative decimal integer)");
    return *parsed;
}

int
run(int argc, char **argv)
{
    std::string bench = "espresso";
    std::string trace_file;
    Count insts = 400'000;
    Cycle trace_cycles = 0;
    bool csv = false;
    bool describe_only = false;
    std::string journal;
    bool resume = false;
    std::string spec;
    WatchdogConfig watchdog = defaultWatchdog();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--bench" && i + 1 < argc) {
            bench = argv[++i];
        } else if (arg == "--insts" && i + 1 < argc) {
            insts = numericOption(arg, argv[++i]);
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_file = argv[++i];
        } else if (arg == "--pipeline-trace" && i + 1 < argc) {
            trace_cycles = numericOption(arg, argv[++i]);
        } else if (arg == "--cycle-budget" && i + 1 < argc) {
            watchdog.cycle_budget = numericOption(arg, argv[++i]);
        } else if (arg == "--journal" && i + 1 < argc) {
            journal = argv[++i];
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--describe") {
            describe_only = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else if (arg.find('=') != std::string::npos) {
            spec += arg + " ";
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage();
        }
    }

    const MachineConfig machine = parseMachineSpec(spec);
    if (describe_only) {
        std::cout << describe(machine) << "\n";
        return 0;
    }

    if (!trace_file.empty()) {
        if (!journal.empty() || resume)
            util::raiseError(util::SimErrorCode::BadConfig,
                             "--journal/--resume apply to synthetic "
                             "benchmarks, not --trace replays");
        trace::FileTraceSource src(trace_file);
        trace::LimitedTraceSource limited(src, insts);
        Processor cpu(machine, limited, watchdog);
        RunResult r = cpu.run();
        r.benchmark = trace_file;
        std::cout << runReport(r);
        return 0;
    }

    std::vector<trace::WorkloadProfile> suite;
    if (bench == "int") {
        suite = trace::integerSuite();
    } else if (bench == "fp") {
        suite = trace::floatSuite();
    } else if (bench == "all") {
        suite = trace::integerSuite();
        const auto fp = trace::floatSuite();
        suite.insert(suite.end(), fp.begin(), fp.end());
    } else {
        suite.push_back(trace::profileByName(bench));
    }

    if (!journal.empty()) {
        if (trace_cycles > 0)
            util::raiseError(util::SimErrorCode::BadConfig,
                             "--journal cannot be combined with "
                             "--pipeline-trace");
        // Synthetic runs through the sweep engine share its journal:
        // every completed benchmark is flushed to disk, and --resume
        // replays finished ones bit-identically (see docs/harness.md).
        harness::SweepOptions sweep_options;
        sweep_options.watchdog = watchdog;
        sweep_options.journal = journal;
        sweep_options.resume = resume;
        harness::SweepRunner runner(sweep_options);
        const auto outcomes =
            runner.runOutcomes(harness::suiteJobs(machine, suite, insts));

        SuiteResult res;
        res.machine = machine;
        bool any_failed = false;
        for (const auto &out : outcomes) {
            if (out.ok) {
                res.runs.push_back(out.result);
            } else {
                any_failed = true;
                std::cerr << "aurora_sim: job failed ("
                          << util::errorCodeName(out.code)
                          << "): " << out.error << "\n";
            }
        }
        if (any_failed)
            return 1;
        if (res.runs.size() == 1 && !csv) {
            std::cout << runReport(res.runs.front());
            return 0;
        }
        if (csv) {
            std::cout << suiteTable(res).csv();
        } else {
            suiteTable(res).print(std::cout,
                                  "machine: " + describe(machine));
            stallTable(res).print(std::cout, "stall breakdown (CPI)");
            std::cout << "suite average CPI: "
                      << formatFixed(res.avgCpi(), 3) << "\n";
        }
        return 0;
    }
    if (resume)
        util::raiseError(util::SimErrorCode::BadConfig,
                         "--resume requires --journal FILE");

    if (suite.size() == 1 && !csv) {
        if (trace_cycles > 0) {
            trace::SyntheticWorkload workload(suite.front());
            trace::LimitedTraceSource limited(workload, insts);
            Processor cpu(machine, limited, watchdog);
            PipelineTracer tracer(std::cout, trace_cycles);
            cpu.setObserver(&tracer);
            RunResult r = cpu.run();
            r.benchmark = suite.front().name;
            std::cout << runReport(r);
            return 0;
        }
        const RunResult r =
            simulate(machine, suite.front(), insts, watchdog);
        std::cout << runReport(r);
        return 0;
    }

    const SuiteResult res = runSuite(machine, suite, insts, watchdog);
    if (csv) {
        std::cout << suiteTable(res).csv();
    } else {
        suiteTable(res).print(std::cout,
                              "machine: " + describe(machine));
        stallTable(res).print(std::cout, "stall breakdown (CPI)");
        std::cout << "suite average CPI: "
                  << formatFixed(res.avgCpi(), 3) << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const util::SimError &e) {
        // A recoverable user error: bad configuration, corrupt trace,
        // or a wedged machine caught by the watchdog. One line, no
        // core dump — the message already names the offending input.
        std::cerr << "aurora_sim: " << e.what() << "\n";
        return 1;
    }
}
