/**
 * @file
 * aurora_sim — the command-line simulator driver.
 *
 * Usage:
 *   aurora_sim [options] [key=value ...]
 *
 * Options:
 *   --bench NAME      benchmark (default espresso); 'int' or 'fp'
 *                     run the whole suite; 'all' runs both suites
 *   --insts N         instructions per run (default 400000)
 *   --trace FILE      replay a captured trace file instead of a
 *                     synthetic benchmark
 *   --csv             emit machine-readable CSV summary
 *   --describe        print the fully resolved configuration and exit
 *   --pipeline-trace N  print per-cycle issue/stall/retire events for
 *                     the first N cycles (single benchmark only)
 *   --cycle-budget N  abort any run that reaches simulated cycle N
 *                     with a CycleBudgetExceeded error (0 = unlimited)
 *   --journal FILE    append every completed run to a crash-safe
 *                     sweep journal (synthetic benchmarks only)
 *   --resume          with --journal: replay completed runs from the
 *                     journal and execute only the missing ones
 *   --stats-json FILE write the run (or suite) as a structured JSON
 *                     document, schema aurora.run.v1/aurora.suite.v1,
 *                     including the telemetry metrics registry
 *                     ('-' = stdout; see docs/observability.md)
 *   --stats-csv FILE  write one flat CSV row per run ('-' = stdout)
 *   --trace-events FILE  write a Chrome trace-event (Perfetto)
 *                     rendering of the pipeline, bounded by
 *                     --trace-event-cycles (single benchmark only)
 *   --trace-event-cycles N  cycles captured by --trace-events
 *                     (default 50000)
 *   --sweep-trace FILE  with --journal: write the sweep's per-job
 *                     worker timeline as a Chrome trace-event file
 *
 * Remaining key=value arguments configure the machine; see
 * `src/core/config_io.hh` (model=, icache=, mshr=, latency=,
 * fp_policy=, ...).
 *
 * Error handling: recoverable user errors (bad key=value, corrupt
 * trace file, a machine that stops making forward progress — see
 * docs/robustness.md) surface as util::SimError; main() catches them
 * and exits 1 with a one-line diagnostic instead of a stack trace.
 *
 * Examples:
 *   aurora_sim --bench gcc model=large latency=35
 *   aurora_sim --bench int model=baseline mshr=4 icache=4096
 *   aurora_sim --bench fp fp_policy=inorder
 *   aurora_sim --bench nasa7 --cycle-budget 2000000 fp_buses=1
 *   aurora_sim --bench espresso --stats-json - --trace-events t.json
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config_io.hh"
#include "core/pipeline_trace.hh"
#include "core/report.hh"
#include "core/simulator.hh"
#include "harness/sweep.hh"
#include "harness/sweep_trace.hh"
#include "telemetry/export.hh"
#include "telemetry/sampler.hh"
#include "telemetry/trace_event.hh"
#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"
#include "trace/trace_io.hh"
#include "util/env.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: aurora_sim [--bench NAME|int|fp|all] [--insts N]\n"
        << "                  [--trace FILE] [--csv] [--describe]\n"
        << "                  [--pipeline-trace N] [--cycle-budget N]\n"
        << "                  [--journal FILE] [--resume]\n"
        << "                  [--stats-json FILE] [--stats-csv FILE]\n"
        << "                  [--trace-events FILE]\n"
        << "                  [--trace-event-cycles N]\n"
        << "                  [--sweep-trace FILE]\n"
        << "                  [key=value ...]\n";
    std::exit(2);
}

/**
 * Parse a numeric option strictly: strtoull's silent acceptance of
 * "2OOOOO" as 2 would misconfigure a run without a trace, so anything
 * but a complete non-negative decimal is a BadConfig error.
 */
Count
numericOption(const std::string &option, const std::string &value)
{
    const auto parsed = parseCount(value);
    if (!parsed)
        util::raiseError(util::SimErrorCode::BadConfig, "option ",
                         option, ": bad numeric value '", value,
                         "' (accepted: a non-negative decimal integer)");
    return *parsed;
}

/** Export destination: a file, or stdout when the path is "-". */
class Output
{
  public:
    explicit Output(const std::string &path)
    {
        if (path == "-")
            return;
        file_.open(path);
        if (!file_)
            util::raiseError(util::SimErrorCode::BadConfig,
                             "cannot open output file '", path, "'");
    }

    std::ostream &stream() { return file_.is_open() ? file_ : std::cout; }

  private:
    std::ofstream file_;
};

/** Everything --stats-json/--stats-csv/--trace-events asked for. */
struct ExportRequest
{
    std::string stats_json;
    std::string stats_csv;
    std::string trace_events;
    Cycle trace_event_cycles = 50'000;
    std::string sweep_trace;

    bool wantsStats() const
    {
        return !stats_json.empty() || !stats_csv.empty();
    }
};

/** Write the single-run exports (JSON document, CSV, trace events). */
void
exportRun(const ExportRequest &request, const RunResult &result,
          const telemetry::Registry *registry,
          const telemetry::TraceEventLog *events)
{
    if (!request.stats_json.empty()) {
        Output out(request.stats_json);
        telemetry::writeRunDocument(out.stream(), result, registry);
    }
    if (!request.stats_csv.empty()) {
        Output out(request.stats_csv);
        out.stream() << telemetry::statsCsvHeader() << '\n'
                     << telemetry::statsCsvRow(result) << '\n';
    }
    if (!request.trace_events.empty()) {
        Output out(request.trace_events);
        events->write(out.stream());
    }
}

/** Write the suite exports; @p registries may be empty (no metrics). */
void
exportSuite(const ExportRequest &request,
            const std::vector<RunResult> &runs,
            const std::vector<telemetry::Registry> &registries)
{
    if (!request.stats_json.empty()) {
        std::vector<telemetry::SuiteEntry> entries;
        entries.reserve(runs.size());
        for (std::size_t i = 0; i < runs.size(); ++i)
            entries.push_back({&runs[i], i < registries.size()
                                             ? &registries[i]
                                             : nullptr});
        Output out(request.stats_json);
        telemetry::writeSuiteDocument(out.stream(), entries);
    }
    if (!request.stats_csv.empty()) {
        Output out(request.stats_csv);
        out.stream() << telemetry::statsCsvHeader() << '\n';
        for (const RunResult &r : runs)
            out.stream() << telemetry::statsCsvRow(r) << '\n';
    }
}

int
run(int argc, char **argv)
{
    std::string bench = "espresso";
    std::string trace_file;
    Count insts = 400'000;
    Cycle trace_cycles = 0;
    bool csv = false;
    bool describe_only = false;
    std::string journal;
    bool resume = false;
    ExportRequest request;
    std::string spec;
    WatchdogConfig watchdog = defaultWatchdog();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--bench" && i + 1 < argc) {
            bench = argv[++i];
        } else if (arg == "--insts" && i + 1 < argc) {
            insts = numericOption(arg, argv[++i]);
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_file = argv[++i];
        } else if (arg == "--pipeline-trace" && i + 1 < argc) {
            trace_cycles = numericOption(arg, argv[++i]);
        } else if (arg == "--cycle-budget" && i + 1 < argc) {
            watchdog.cycle_budget = numericOption(arg, argv[++i]);
        } else if (arg == "--journal" && i + 1 < argc) {
            journal = argv[++i];
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--stats-json" && i + 1 < argc) {
            request.stats_json = argv[++i];
        } else if (arg == "--stats-csv" && i + 1 < argc) {
            request.stats_csv = argv[++i];
        } else if (arg == "--trace-events" && i + 1 < argc) {
            request.trace_events = argv[++i];
        } else if (arg == "--trace-event-cycles" && i + 1 < argc) {
            request.trace_event_cycles = numericOption(arg, argv[++i]);
        } else if (arg == "--sweep-trace" && i + 1 < argc) {
            request.sweep_trace = argv[++i];
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--describe") {
            describe_only = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else if (arg.find('=') != std::string::npos) {
            spec += arg + " ";
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage();
        }
    }

    const MachineConfig machine = parseMachineSpec(spec);
    if (describe_only) {
        std::cout << describe(machine) << "\n";
        return 0;
    }
    if (!request.sweep_trace.empty() && journal.empty())
        util::raiseError(util::SimErrorCode::BadConfig,
                         "--sweep-trace requires --journal FILE (it "
                         "renders the sweep engine's job timeline)");

    if (!trace_file.empty()) {
        if (!journal.empty() || resume)
            util::raiseError(util::SimErrorCode::BadConfig,
                             "--journal/--resume apply to synthetic "
                             "benchmarks, not --trace replays");
        telemetry::Registry registry;
        telemetry::TraceEventLog events;
        std::optional<telemetry::RunSampler> sampler;
        std::optional<telemetry::TraceEventObserver> event_observer;
        ObserverFanout fanout;
        if (!request.stats_json.empty())
            fanout.attach(&sampler.emplace(registry));
        if (!request.trace_events.empty())
            fanout.attach(&event_observer.emplace(
                events, request.trace_event_cycles));
        trace::FileTraceSource src(trace_file);
        trace::LimitedTraceSource limited(src, insts);
        Processor cpu(machine, limited, watchdog);
        if (!fanout.empty())
            cpu.setObserver(&fanout);
        RunResult r = cpu.run();
        r.benchmark = trace_file;
        std::cout << runReport(r);
        exportRun(request, r, sampler ? &registry : nullptr, &events);
        return 0;
    }

    std::vector<trace::WorkloadProfile> suite;
    if (bench == "int") {
        suite = trace::integerSuite();
    } else if (bench == "fp") {
        suite = trace::floatSuite();
    } else if (bench == "all") {
        suite = trace::integerSuite();
        const auto fp = trace::floatSuite();
        suite.insert(suite.end(), fp.begin(), fp.end());
    } else {
        suite.push_back(trace::profileByName(bench));
    }
    if (!request.trace_events.empty() && (suite.size() != 1 || csv))
        util::raiseError(util::SimErrorCode::BadConfig,
                         "--trace-events renders one pipeline: pick a "
                         "single benchmark (like --pipeline-trace)");

    if (!journal.empty()) {
        if (trace_cycles > 0)
            util::raiseError(util::SimErrorCode::BadConfig,
                             "--journal cannot be combined with "
                             "--pipeline-trace");
        if (!request.trace_events.empty())
            util::raiseError(util::SimErrorCode::BadConfig,
                             "--journal cannot be combined with "
                             "--trace-events (use --sweep-trace for "
                             "the sweep-level timeline)");
        // Synthetic runs through the sweep engine share its journal:
        // every completed benchmark is flushed to disk, and --resume
        // replays finished ones bit-identically (see docs/harness.md).
        harness::SweepTimeline timeline;
        harness::SweepOptions sweep_options;
        sweep_options.watchdog = watchdog;
        sweep_options.journal = journal;
        sweep_options.resume = resume;
        if (!request.sweep_trace.empty())
            sweep_options.timeline = &timeline;
        harness::SweepRunner runner(sweep_options);
        const auto outcomes =
            runner.runOutcomes(harness::suiteJobs(machine, suite, insts));
        if (!request.sweep_trace.empty()) {
            Output out(request.sweep_trace);
            harness::writeTimelineTrace(out.stream(), timeline);
        }

        SuiteResult res;
        res.machine = machine;
        bool any_failed = false;
        for (const auto &out : outcomes) {
            if (out.ok) {
                res.runs.push_back(out.result);
            } else {
                any_failed = true;
                std::cerr << "aurora_sim: job failed ("
                          << util::errorCodeName(out.code)
                          << "): " << out.error << "\n";
            }
        }
        if (any_failed)
            return 1;
        // Journal replays carry no live registry, so these exports
        // contain the RunResults without per-run metrics.
        exportSuite(request, res.runs, {});
        if (res.runs.size() == 1 && !csv) {
            std::cout << runReport(res.runs.front());
            return 0;
        }
        if (csv) {
            std::cout << suiteTable(res).csv();
        } else {
            suiteTable(res).print(std::cout,
                                  "machine: " + describe(machine));
            stallTable(res).print(std::cout, "stall breakdown (CPI)");
            std::cout << "suite average CPI: "
                      << formatFixed(res.avgCpi(), 3) << "\n";
        }
        return 0;
    }
    if (resume)
        util::raiseError(util::SimErrorCode::BadConfig,
                         "--resume requires --journal FILE");

    if (suite.size() == 1 && !csv) {
        telemetry::Registry registry;
        telemetry::TraceEventLog events;
        std::optional<PipelineTracer> tracer;
        std::optional<telemetry::RunSampler> sampler;
        std::optional<telemetry::TraceEventObserver> event_observer;
        ObserverFanout fanout;
        if (trace_cycles > 0)
            fanout.attach(&tracer.emplace(std::cout, trace_cycles));
        if (!request.stats_json.empty())
            fanout.attach(&sampler.emplace(registry));
        if (!request.trace_events.empty())
            fanout.attach(&event_observer.emplace(
                events, request.trace_event_cycles));

        trace::SyntheticWorkload workload(suite.front());
        trace::LimitedTraceSource limited(workload, insts);
        Processor cpu(machine, limited, watchdog);
        if (!fanout.empty())
            cpu.setObserver(&fanout);
        RunResult r = cpu.run();
        r.benchmark = suite.front().name;
        std::cout << runReport(r);
        exportRun(request, r, sampler ? &registry : nullptr, &events);
        return 0;
    }

    if (request.wantsStats()) {
        // Suite exports keep the sweep engine's parallelism: one
        // registry+sampler pair per job, results in submission order.
        std::vector<telemetry::Registry> registries(suite.size());
        std::vector<std::unique_ptr<telemetry::RunSampler>> samplers;
        std::vector<std::function<RunResult()>> tasks;
        samplers.reserve(suite.size());
        tasks.reserve(suite.size());
        for (std::size_t i = 0; i < suite.size(); ++i) {
            samplers.push_back(std::make_unique<telemetry::RunSampler>(
                registries[i]));
            telemetry::RunSampler *sampler = samplers.back().get();
            const trace::WorkloadProfile &profile = suite[i];
            tasks.push_back([&machine, &profile, insts, watchdog,
                             sampler]() {
                return simulate(machine, profile, insts, watchdog,
                                sampler);
            });
        }
        harness::SweepOptions sweep_options;
        sweep_options.watchdog = watchdog;
        harness::SweepRunner runner(sweep_options);
        SuiteResult res;
        res.machine = machine;
        res.runs = runner.runTasks(tasks);
        exportSuite(request, res.runs, registries);
        if (csv) {
            std::cout << suiteTable(res).csv();
        } else {
            suiteTable(res).print(std::cout,
                                  "machine: " + describe(machine));
            stallTable(res).print(std::cout, "stall breakdown (CPI)");
            std::cout << "suite average CPI: "
                      << formatFixed(res.avgCpi(), 3) << "\n";
        }
        return 0;
    }

    const SuiteResult res = runSuite(machine, suite, insts, watchdog);
    if (csv) {
        std::cout << suiteTable(res).csv();
    } else {
        suiteTable(res).print(std::cout,
                              "machine: " + describe(machine));
        stallTable(res).print(std::cout, "stall breakdown (CPI)");
        std::cout << "suite average CPI: "
                  << formatFixed(res.avgCpi(), 3) << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const util::SimError &e) {
        // A recoverable user error: bad configuration, corrupt trace,
        // or a wedged machine caught by the watchdog. One line, no
        // core dump — the message already names the offending input.
        std::cerr << "aurora_sim: " << e.what() << "\n";
        return 1;
    }
}
