/**
 * @file
 * aurora_swarm — distributed sweep coordinator CLI.
 *
 *   aurora_swarm --socket PATH --journal-dir DIR [--shards N]
 *                [--spawn fork|exec|external] [--shardd PATH]
 *                [--bench NAME|int|fp|all] [--insts N] [--csv]
 *                [--seed N] [--lease-ms N] [--beat-ms N] [--chunk N]
 *                [--max-respawns N] [--idle-timeout-ms N]
 *                [--journal FILE] [--resume] [--retries N]
 *                [--deadline-ms N] [--backoff-ms N]
 *                [--fault SLOT:NAME:AFTER] [--verbose] [--stats]
 *                [--trace-out FILE] [--flight-dir DIR]
 *                [key=value ...]
 *
 * Runs the same (machine × suite) grids as `aurora_sim --bench X`,
 * but partitioned across N shard worker processes under lease-fenced
 * supervision (docs/distributed.md). The merged output is
 * bit-identical to the serial run — `aurora_swarm --bench int --csv`
 * and `aurora_sim --bench int --csv` must diff clean even when shards
 * are SIGKILLed mid-grid, which is exactly what
 * `scripts/check.sh shard` does.
 *
 * Spawn modes: `fork` (default) forks in-process workers; `exec`
 * launches the aurora_shardd binary named by --shardd; `external`
 * only listens — the caller starts (and may kill) the workers, the
 * chaos-drill shape.
 *
 * --fault scripts sabotage into a spawned slot, e.g.
 * `--fault 1:kill-shard:2` SIGKILL-shapes slot 1's initial worker
 * after two jobs (see `aurora_lint explain AUR302`).
 *
 * --trace-out mints a causal trace id for the grid and writes the
 * merged Chrome trace — coordinator lease/dispatch/merge spans plus
 * every shard's attempt spans, all parented under one grid root — to
 * FILE (validate with `aurora_obs_check trace`). --flight-dir names
 * the directory for the crash-durable flight recorders (the
 * coordinator's swarm.flight and each incarnation's
 * shard-e<epoch>.flight/.spans); it defaults to
 * <journal-dir>/obs when --trace-out is given.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/config_io.hh"
#include "core/report.hh"
#include "core/simulator.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "obs/ids.hh"
#include "obs/trace.hh"
#include "shard/swarm.hh"
#include "trace/spec_profiles.hh"
#include "util/env.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: aurora_swarm --socket PATH --journal-dir DIR\n"
        << "                    [--shards N] [--spawn fork|exec|"
           "external]\n"
        << "                    [--shardd PATH] [--bench NAME|int|fp|"
           "all]\n"
        << "                    [--insts N] [--csv] [--seed N]\n"
        << "                    [--lease-ms N] [--beat-ms N] "
           "[--chunk N]\n"
        << "                    [--max-respawns N] "
           "[--idle-timeout-ms N]\n"
        << "                    [--journal FILE] [--resume]\n"
        << "                    [--retries N] [--deadline-ms N]\n"
        << "                    [--backoff-ms N]\n"
        << "                    [--fault SLOT:NAME:AFTER] [--verbose]\n"
        << "                    [--stats] [--trace-out FILE]\n"
        << "                    [--flight-dir DIR] [key=value ...]\n";
    std::exit(2);
}

std::uint64_t
numericOption(const std::string &option, const std::string &value)
{
    const auto parsed = parseCount(value);
    if (!parsed)
        util::raiseError(util::SimErrorCode::BadConfig, "option ",
                         option, ": bad numeric value '", value, "'");
    return *parsed;
}

int
run(int argc, char **argv)
{
    shard::SwarmConfig config;
    shard::GridOptions grid_options;
    std::string bench = "int";
    Count insts = 400'000;
    bool csv = false;
    bool stats = false;
    std::string trace_out;
    std::string spec;
    std::vector<std::pair<std::uint32_t, faultinject::ShardFaultPlan>>
        faults;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            config.socket_path = argv[++i];
        } else if (arg == "--journal-dir" && i + 1 < argc) {
            config.journal_dir = argv[++i];
        } else if (arg == "--shards" && i + 1 < argc) {
            config.shards = static_cast<std::uint32_t>(
                numericOption(arg, argv[++i]));
        } else if (arg == "--spawn" && i + 1 < argc) {
            const std::string mode = argv[++i];
            if (mode == "fork")
                config.spawn = shard::SpawnMode::Fork;
            else if (mode == "exec")
                config.spawn = shard::SpawnMode::Exec;
            else if (mode == "external")
                config.spawn = shard::SpawnMode::External;
            else
                util::raiseError(util::SimErrorCode::BadConfig,
                                 "--spawn: unknown mode '", mode,
                                 "' (accepted: fork, exec, external)");
        } else if (arg == "--shardd" && i + 1 < argc) {
            config.shardd_path = argv[++i];
        } else if (arg == "--bench" && i + 1 < argc) {
            bench = argv[++i];
        } else if (arg == "--insts" && i + 1 < argc) {
            insts = numericOption(arg, argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            grid_options.base_seed = numericOption(arg, argv[++i]);
        } else if (arg == "--lease-ms" && i + 1 < argc) {
            config.lease_ms = numericOption(arg, argv[++i]);
        } else if (arg == "--beat-ms" && i + 1 < argc) {
            config.beat_ms = numericOption(arg, argv[++i]);
        } else if (arg == "--chunk" && i + 1 < argc) {
            config.chunk = static_cast<std::uint32_t>(
                numericOption(arg, argv[++i]));
        } else if (arg == "--max-respawns" && i + 1 < argc) {
            config.max_respawns = static_cast<std::uint32_t>(
                numericOption(arg, argv[++i]));
        } else if (arg == "--idle-timeout-ms" && i + 1 < argc) {
            config.idle_timeout_ms = numericOption(arg, argv[++i]);
        } else if (arg == "--journal" && i + 1 < argc) {
            grid_options.journal = argv[++i];
        } else if (arg == "--resume") {
            grid_options.resume = true;
        } else if (arg == "--retries" && i + 1 < argc) {
            grid_options.retries = static_cast<std::uint32_t>(
                numericOption(arg, argv[++i]));
        } else if (arg == "--deadline-ms" && i + 1 < argc) {
            grid_options.deadline_ms = numericOption(arg, argv[++i]);
        } else if (arg == "--backoff-ms" && i + 1 < argc) {
            grid_options.backoff_ms = numericOption(arg, argv[++i]);
        } else if (arg == "--fault" && i + 1 < argc) {
            const std::string value = argv[++i];
            const std::size_t colon = value.find(':');
            if (colon == std::string::npos)
                util::raiseError(util::SimErrorCode::BadConfig,
                                 "--fault: expected "
                                 "SLOT:NAME:AFTER, got '",
                                 value, "'");
            const auto slot = static_cast<std::uint32_t>(
                numericOption(arg, value.substr(0, colon)));
            const auto plan = faultinject::parseShardFaultPlan(
                value.substr(colon + 1));
            if (!plan)
                util::raiseError(util::SimErrorCode::BadConfig,
                                 "--fault: malformed plan '",
                                 value.substr(colon + 1),
                                 "' (expected <fault-name>:<after-"
                                 "jobs>)");
            faults.emplace_back(slot, *plan);
        } else if (arg == "--trace-out" && i + 1 < argc) {
            trace_out = argv[++i];
        } else if (arg == "--flight-dir" && i + 1 < argc) {
            config.flight_dir = argv[++i];
        } else if (arg == "--verbose") {
            config.verbose = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else if (arg.find('=') != std::string::npos) {
            spec += arg + " ";
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage();
        }
    }
    if (config.socket_path.empty() || config.journal_dir.empty())
        usage();

    config.fault_plans.resize(config.shards);
    for (const auto &[slot, plan] : faults) {
        if (slot >= config.shards)
            util::raiseError(util::SimErrorCode::BadConfig,
                             "--fault: slot ", slot,
                             " out of range (", config.shards,
                             " shards)");
        config.fault_plans[slot] = plan;
    }

    const MachineConfig machine = parseMachineSpec(spec);
    std::vector<trace::WorkloadProfile> suite;
    if (bench == "int") {
        suite = trace::integerSuite();
    } else if (bench == "fp") {
        suite = trace::floatSuite();
    } else if (bench == "all") {
        suite = trace::integerSuite();
        const auto fp = trace::floatSuite();
        suite.insert(suite.end(), fp.begin(), fp.end());
    } else {
        suite.push_back(trace::profileByName(bench));
    }

    const std::vector<harness::SweepJob> jobs =
        harness::suiteJobs(machine, suite, insts);

    obs::SpanLog span_log;
    if (!trace_out.empty()) {
        // Shard span files land in the flight dir; without one the
        // trace would hold only the coordinator's half.
        if (config.flight_dir.empty())
            config.flight_dir = config.journal_dir + "/obs";
        grid_options.trace_id = obs::traceIdForGrid(
            harness::gridFingerprint(jobs, grid_options.base_seed));
        grid_options.span_log = &span_log;
    }

    shard::Swarm swarm(config);
    const std::vector<harness::SweepOutcome> outcomes =
        swarm.runGrid(jobs, grid_options);

    if (!trace_out.empty()) {
        // This CLI minted the trace, so it owns the grid root: one
        // span covering everything the fabric recorded.
        std::vector<obs::Span> spans = span_log.spans();
        double end_us = 0.0;
        for (const obs::Span &s : spans)
            end_us = std::max(end_us, s.ts_us + s.dur_us);
        obs::Span root;
        root.trace_id = grid_options.trace_id;
        root.span_id = obs::rootSpanId(grid_options.trace_id);
        root.name = "grid " + obs::hexId(grid_options.trace_id);
        root.cat = "grid";
        root.pid = 1;
        root.dur_us = end_us;
        spans.push_back(std::move(root));

        std::vector<obs::ProcessName> processes;
        std::set<std::uint32_t> pids;
        for (const obs::Span &s : spans)
            pids.insert(s.pid);
        for (const std::uint32_t pid : pids)
            processes.push_back(
                {pid, pid == 1 ? std::string("aurora_swarm")
                               : "aurora_shardd e" +
                                     std::to_string(pid - 100)});

        std::ofstream os(trace_out, std::ios::binary);
        if (!os)
            util::raiseError(util::SimErrorCode::BadTrace,
                             "cannot open --trace-out file '",
                             trace_out, "'");
        obs::writeChromeTrace(os, spans, processes);
    }

    SuiteResult res;
    res.machine = machine;
    bool any_failed = false;
    for (const harness::SweepOutcome &out : outcomes) {
        if (out.ok) {
            res.runs.push_back(out.result);
        } else {
            any_failed = true;
            std::cerr << "aurora_swarm: job failed ("
                      << util::errorCodeName(out.code)
                      << "): " << out.error << "\n";
        }
    }
    if (stats) {
        const shard::SwarmStats &s = swarm.stats();
        std::cerr << "swarm stats: leases=" << s.granted_leases
                  << " expiries=" << s.lease_expiries
                  << " exits=" << s.shard_exits
                  << " fenced_results=" << s.fenced_results
                  << " protocol_errors=" << s.protocol_errors
                  << " migrated=" << s.migrated_jobs
                  << " respawns=" << s.respawns
                  << " committed=" << s.committed
                  << " resumed=" << s.resumed << "\n";
    }
    if (any_failed)
        return 1;

    if (csv) {
        std::cout << suiteTable(res).csv();
    } else {
        suiteTable(res).print(std::cout,
                              "machine: " + describe(machine));
        stallTable(res).print(std::cout, "stall breakdown (CPI)");
        std::cout << "suite average CPI: "
                  << formatFixed(res.avgCpi(), 3) << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const util::SimError &e) {
        std::cerr << "aurora_swarm: " << e.what() << "\n";
        return 1;
    }
}
