/**
 * @file
 * aurora_shardd — one shard worker process of a distributed sweep.
 *
 *   aurora_shardd --socket PATH --journal-dir DIR
 *                 [--connect-timeout-ms N] [--flight-dir DIR]
 *
 * Dials the aurora_swarm coordinator at PATH, receives a lease, and
 * executes assigned jobs until Shutdown or Fenced (see
 * docs/distributed.md). The process is deliberately argument-poor:
 * everything about *what* to run arrives over the wire.
 *
 * Fault injection (chaos drills): when AURORA_SHARD_FAULT is set to a
 * faultinject::formatShardFaultPlan() string ("kill-shard:2", ...),
 * the worker sabotages itself at the scripted point. A malformed plan
 * is fatal — a drill must never silently run the wrong sabotage.
 */

#include <iostream>
#include <string>

#include "faultinject/faultinject.hh"
#include "shard/shardd.hh"
#include "util/env.hh"
#include "util/sim_error.hh"

namespace
{

using namespace aurora;

[[noreturn]] void
usage()
{
    std::cerr << "usage: aurora_shardd --socket PATH "
                 "--journal-dir DIR\n"
                 "                     [--connect-timeout-ms N] "
                 "[--flight-dir DIR]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    shard::ShardWorkerConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            config.socket_path = argv[++i];
        } else if (arg == "--journal-dir" && i + 1 < argc) {
            config.journal_dir = argv[++i];
        } else if (arg == "--connect-timeout-ms" && i + 1 < argc) {
            config.connect_timeout_ms =
                std::stoull(std::string(argv[++i]));
        } else if (arg == "--flight-dir" && i + 1 < argc) {
            config.flight_dir = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage();
        }
    }
    if (config.socket_path.empty() || config.journal_dir.empty())
        usage();

    if (const auto plan = envString(shard::SHARD_FAULT_ENV)) {
        config.fault = faultinject::parseShardFaultPlan(*plan);
        if (!config.fault) {
            std::cerr << "aurora_shardd: malformed "
                      << shard::SHARD_FAULT_ENV << " '" << *plan
                      << "' (expected <fault-name>:<after-jobs>)\n";
            return 2;
        }
    }

    try {
        return shard::runShardWorker(config);
    } catch (const util::SimError &e) {
        std::cerr << "aurora_shardd: " << e.what() << "\n";
        return shard::SHARD_EXIT_ERROR;
    }
}
