/**
 * @file
 * aurora_submit — client for the aurora_serve sweep daemon.
 *
 * Usage:
 *   aurora_submit --socket PATH --tenant NAME [action] [options]
 *                 [key=value ...]
 *
 * Actions (default: submit a grid and stream its results):
 *   --attach FPHEX     re-attach to a grid by fingerprint: journaled
 *                      results replay first, live ones stream after
 *   --cancel FPHEX     cancel a grid (queued jobs finalize Cancelled)
 *   --status           print the daemon's status report
 *
 * Submit options:
 *   --bench NAME|int|fp|all   benchmark or suite (default espresso)
 *   --insts N                 instruction budget per job
 *   --label STR               human label for status listings
 *   --base-seed N             SweepOptions::base_seed
 *   --retries N               per-job retry budget
 *   --deadline-ms N           per-attempt deadline (Timeout, no retry)
 *   --backoff-ms N            linear retry backoff
 *   --cancel-on-disconnect    dropping this connection cancels the grid
 *   --no-wait                 print the fingerprint and exit once
 *                             accepted (re-attach later)
 *   --stats-csv FILE          write ok results as a stats CSV in job
 *                             order ('-' = stdout) — bit-identical to
 *                             aurora_sim --stats-csv of the same grid
 *   --timeout-ms N            per-frame receive timeout (0 = forever)
 *   --quiet                   suppress per-job and progress lines
 *   [key=value ...]           machine spec (see aurora_sim --describe)
 *
 * Exit codes: 0 all jobs ok; 1 rejected / job failures / errors;
 * 2 usage; 3 connection lost before the grid finished (the daemon
 * keeps or persists the grid — re-attach with --attach FPHEX).
 */

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_io.hh"
#include "harness/journal.hh"
#include "serve/wire.hh"
#include "telemetry/export.hh"
#include "trace/spec_profiles.hh"
#include "util/sim_error.hh"
#include "util/socket.hh"

namespace
{

using namespace aurora;
namespace wire = serve::wire;

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: aurora_submit --socket PATH --tenant NAME\n"
        << "                     [--attach FPHEX | --cancel FPHEX |"
           " --status]\n"
        << "                     [--bench NAME|int|fp|all] [--insts N]\n"
        << "                     [--label STR] [--base-seed N]\n"
        << "                     [--retries N] [--deadline-ms N]\n"
        << "                     [--backoff-ms N]\n"
        << "                     [--cancel-on-disconnect] [--no-wait]\n"
        << "                     [--stats-csv FILE] [--timeout-ms N]\n"
        << "                     [--quiet] [key=value ...]\n";
    std::exit(2);
}

std::uint64_t
numericOption(const std::string &option, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        util::raiseError(util::SimErrorCode::BadConfig, "option ",
                         option, ": bad numeric value '", value, "'");
    return parsed;
}

/** Parse a grid fingerprint as printed by this tool (16 hex digits). */
std::uint64_t
fingerprintOption(const std::string &option, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 16);
    if (value.empty() || end == value.c_str() || *end != '\0')
        util::raiseError(util::SimErrorCode::BadConfig, "option ",
                         option, ": bad fingerprint '", value,
                         "' (expected hex digits)");
    return parsed;
}

std::string
fpHex(std::uint64_t fingerprint)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << fingerprint;
    return os.str();
}

/** Export destination: a file, or stdout when the path is "-". */
class Output
{
  public:
    explicit Output(const std::string &path)
    {
        if (path == "-")
            return;
        file_.open(path);
        if (!file_)
            util::raiseError(util::SimErrorCode::BadConfig,
                             "cannot open output file '", path, "'");
    }

    std::ostream &stream() { return file_.is_open() ? file_ : std::cout; }

  private:
    std::ofstream file_;
};

struct Options
{
    std::string socket_path;
    std::string tenant;
    std::string bench = "espresso";
    std::uint64_t insts = 400'000;
    std::string label;
    bool has_base_seed = false;
    std::uint64_t base_seed = 0;
    std::uint32_t retries = 0;
    std::uint64_t deadline_ms = 0;
    std::uint64_t backoff_ms = 0;
    bool cancel_on_disconnect = false;
    bool no_wait = false;
    std::string stats_csv;
    std::uint64_t timeout_ms = 0;
    bool quiet = false;
    std::string spec;

    enum class Action
    {
        Submit,
        Attach,
        Cancel,
        Status,
    };
    Action action = Action::Submit;
    std::uint64_t fingerprint = 0;
};

void
printRejected(const wire::RejectedMsg &rejected)
{
    std::cerr << "aurora_submit: rejected (" << rejected.id << ", "
              << util::errorCodeName(rejected.code)
              << "): " << rejected.message << "\n";
}

/** Hello/Welcome handshake; returns the daemon's draining flag. */
bool
handshake(int fd, wire::FrameDecoder &decoder, const Options &opt)
{
    wire::HelloMsg hello;
    hello.tenant = opt.tenant;
    wire::sendFrame(fd, wire::encode(hello));
    const auto reply = wire::recvFrame(fd, decoder, opt.timeout_ms);
    if (!reply)
        util::raiseError(util::SimErrorCode::BadWire,
                         "daemon closed the connection during the "
                         "handshake");
    if (wire::peekType(*reply) == wire::MsgType::Rejected) {
        // Surface the daemon's diagnostic (e.g. AUR207 protocol
        // skew) instead of a generic "expected Welcome" decode error.
        printRejected(wire::decodeRejected(*reply));
        util::raiseError(util::SimErrorCode::BadWire,
                         "daemon rejected the handshake");
    }
    const auto welcome = wire::decodeWelcome(*reply);
    // The daemon echoes the negotiated version: ours, or lower when
    // it is an older build. Anything in the supported range works —
    // v2-only fields simply stay absent on a v1 daemon.
    if (welcome.version < wire::MIN_PROTOCOL_VERSION ||
        welcome.version > wire::PROTOCOL_VERSION)
        util::raiseError(util::SimErrorCode::BadWire,
                         "daemon negotiated protocol version ",
                         welcome.version, ", this client speaks ",
                         wire::MIN_PROTOCOL_VERSION, "..",
                         wire::PROTOCOL_VERSION);
    return welcome.draining;
}

/**
 * Stream one grid to completion: collect Result frames (indexed by
 * job), echo Progress heartbeats, stop at GridDone. Returns the
 * process exit code.
 */
int
streamGrid(int fd, wire::FrameDecoder &decoder, const Options &opt,
           std::uint64_t fingerprint, std::uint64_t total_jobs)
{
    std::map<std::uint64_t, harness::JournalRecord> records;
    bool failures = false;

    while (true) {
        const auto payload = wire::recvFrame(fd, decoder, opt.timeout_ms);
        if (!payload) {
            std::cerr << "aurora_submit: connection closed with "
                      << records.size() << "/" << total_jobs
                      << " results; the daemon keeps the grid — "
                         "re-attach with --attach "
                      << fpHex(fingerprint) << "\n";
            return 3;
        }
        switch (wire::peekType(*payload)) {
          case wire::MsgType::Result: {
            const auto msg = wire::decodeResult(*payload);
            if (msg.fingerprint != fingerprint)
                break;
            auto record = harness::decodeJournalRecord(msg.record);
            const auto index = record.job_index;
            if (!record.outcome.ok) {
                failures = true;
                if (!opt.quiet)
                    std::cerr << "job " << index << " failed ("
                              << util::errorCodeName(record.outcome.code)
                              << "): " << record.outcome.error << "\n";
            } else if (!opt.quiet) {
                std::cerr << "job " << index << " ok ("
                          << record.outcome.result.benchmark << ")"
                          << (record.outcome.resumed ? " [resumed]" : "")
                          << "\n";
            }
            records.emplace(index, std::move(record));
            break;
          }
          case wire::MsgType::Progress: {
            const auto msg = wire::decodeProgress(*payload);
            if (msg.fingerprint == fingerprint && !opt.quiet)
                std::cerr << "progress " << msg.done << "/" << msg.total
                          << " (ok=" << msg.ok
                          << " failed=" << msg.failed
                          << " timed_out=" << msg.timed_out
                          << " cancelled=" << msg.cancelled << ")\n";
            break;
          }
          case wire::MsgType::GridDone: {
            const auto msg = wire::decodeGridDone(*payload);
            if (msg.fingerprint != fingerprint)
                break;
            std::cout << "grid " << fpHex(fingerprint)
                      << " done: ok=" << msg.ok
                      << " failed=" << msg.failed
                      << " timed_out=" << msg.timed_out
                      << " cancelled=" << msg.cancelled
                      << " resumed=" << msg.resumed << "\n";
            if (!opt.stats_csv.empty()) {
                Output out(opt.stats_csv);
                out.stream() << telemetry::statsCsvHeader() << '\n';
                for (const auto &[index, record] : records) {
                    (void)index;
                    if (record.outcome.ok)
                        out.stream()
                            << telemetry::statsCsvRow(
                                   record.outcome.result)
                            << '\n';
                }
            }
            return failures || msg.failed > 0 || msg.timed_out > 0 ||
                           msg.cancelled > 0
                       ? 1
                       : 0;
          }
          case wire::MsgType::Draining:
            if (!opt.quiet)
                std::cerr << "aurora_submit: daemon is draining — "
                             "running jobs finish, queued work "
                             "persists for the next daemon\n";
            break;
          case wire::MsgType::Rejected:
            printRejected(wire::decodeRejected(*payload));
            return 1;
          default:
            break;
        }
    }
}

int
doSubmit(int fd, wire::FrameDecoder &decoder, const Options &opt)
{
    // Parse the machine spec locally first: a typo fails here with the
    // usual BadConfig message instead of a remote rejection, and the
    // daemon receives the canonical (describe round-tripped) form.
    const core::MachineConfig machine = core::parseMachineSpec(opt.spec);
    const std::string machine_spec = core::describe(machine);

    std::vector<trace::WorkloadProfile> suite;
    if (opt.bench == "int") {
        suite = trace::integerSuite();
    } else if (opt.bench == "fp") {
        suite = trace::floatSuite();
    } else if (opt.bench == "all") {
        suite = trace::integerSuite();
        const auto fp = trace::floatSuite();
        suite.insert(suite.end(), fp.begin(), fp.end());
    } else {
        suite.push_back(trace::profileByName(opt.bench));
    }

    wire::SubmitMsg submit;
    submit.label = opt.label;
    submit.cancel_on_disconnect = opt.cancel_on_disconnect;
    submit.has_base_seed = opt.has_base_seed;
    submit.base_seed = opt.base_seed;
    submit.deadline_ms = opt.deadline_ms;
    submit.retries = opt.retries;
    submit.backoff_ms = opt.backoff_ms;
    for (const auto &profile : suite)
        submit.jobs.push_back({machine_spec, profile.name, opt.insts});
    wire::sendFrame(fd, wire::encode(submit));

    const auto reply = wire::recvFrame(fd, decoder, opt.timeout_ms);
    if (!reply)
        util::raiseError(util::SimErrorCode::BadWire,
                         "daemon closed the connection before "
                         "answering the submission");
    if (wire::peekType(*reply) == wire::MsgType::Rejected) {
        printRejected(wire::decodeRejected(*reply));
        return 1;
    }
    const auto accepted = wire::decodeAccepted(*reply);
    std::cout << "accepted " << fpHex(accepted.fingerprint) << " ("
              << accepted.jobs << " jobs)";
    if (accepted.trace_id != 0)
        std::cout << " trace " << fpHex(accepted.trace_id);
    std::cout << "\n";
    if (opt.no_wait)
        return 0;
    return streamGrid(fd, decoder, opt, accepted.fingerprint,
                      accepted.jobs);
}

int
doAttach(int fd, wire::FrameDecoder &decoder, const Options &opt)
{
    wire::AttachMsg attach;
    attach.fingerprint = opt.fingerprint;
    wire::sendFrame(fd, wire::encode(attach));

    const auto reply = wire::recvFrame(fd, decoder, opt.timeout_ms);
    if (!reply)
        util::raiseError(util::SimErrorCode::BadWire,
                         "daemon closed the connection before "
                         "answering the attach");
    if (wire::peekType(*reply) == wire::MsgType::Rejected) {
        printRejected(wire::decodeRejected(*reply));
        return 1;
    }
    const auto accepted = wire::decodeAccepted(*reply);
    std::cout << "attached " << fpHex(accepted.fingerprint) << " ("
              << accepted.done << "/" << accepted.jobs << " done)\n";
    return streamGrid(fd, decoder, opt, accepted.fingerprint,
                      accepted.jobs);
}

int
doCancel(int fd, wire::FrameDecoder &decoder, const Options &opt)
{
    wire::CancelMsg cancel;
    cancel.fingerprint = opt.fingerprint;
    wire::sendFrame(fd, wire::encode(cancel));

    const auto reply = wire::recvFrame(fd, decoder, opt.timeout_ms);
    if (!reply)
        util::raiseError(util::SimErrorCode::BadWire,
                         "daemon closed the connection before "
                         "answering the cancel");
    if (wire::peekType(*reply) == wire::MsgType::Rejected) {
        printRejected(wire::decodeRejected(*reply));
        return 1;
    }
    const auto ok = wire::decodeCancelOk(*reply);
    std::cout << "cancelled " << fpHex(ok.fingerprint) << ": "
              << ok.cancelled_jobs << " queued jobs dropped\n";
    return 0;
}

int
doStatus(int fd, wire::FrameDecoder &decoder, const Options &opt)
{
    wire::sendFrame(fd, wire::encode(wire::StatusMsg{}));
    const auto reply = wire::recvFrame(fd, decoder, opt.timeout_ms);
    if (!reply)
        util::raiseError(util::SimErrorCode::BadWire,
                         "daemon closed the connection before "
                         "answering the status request");
    const auto status = wire::decodeStatusReport(*reply);
    std::cout << "draining: " << (status.draining ? "yes" : "no")
              << "\n"
              << "grids: " << status.grids << " (" << status.done_grids
              << " done)\n"
              << "jobs: queued=" << status.queued_jobs
              << " running=" << status.running_jobs
              << " done=" << status.done_jobs << "\n";
    return 0;
}

int
run(int argc, char **argv)
{
    Options opt;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            opt.socket_path = argv[++i];
        } else if (arg == "--tenant" && i + 1 < argc) {
            opt.tenant = argv[++i];
        } else if (arg == "--attach" && i + 1 < argc) {
            opt.action = Options::Action::Attach;
            opt.fingerprint = fingerprintOption(arg, argv[++i]);
        } else if (arg == "--cancel" && i + 1 < argc) {
            opt.action = Options::Action::Cancel;
            opt.fingerprint = fingerprintOption(arg, argv[++i]);
        } else if (arg == "--status") {
            opt.action = Options::Action::Status;
        } else if (arg == "--bench" && i + 1 < argc) {
            opt.bench = argv[++i];
        } else if (arg == "--insts" && i + 1 < argc) {
            opt.insts = numericOption(arg, argv[++i]);
        } else if (arg == "--label" && i + 1 < argc) {
            opt.label = argv[++i];
        } else if (arg == "--base-seed" && i + 1 < argc) {
            opt.has_base_seed = true;
            opt.base_seed = numericOption(arg, argv[++i]);
        } else if (arg == "--retries" && i + 1 < argc) {
            opt.retries =
                static_cast<std::uint32_t>(numericOption(arg, argv[++i]));
        } else if (arg == "--deadline-ms" && i + 1 < argc) {
            opt.deadline_ms = numericOption(arg, argv[++i]);
        } else if (arg == "--backoff-ms" && i + 1 < argc) {
            opt.backoff_ms = numericOption(arg, argv[++i]);
        } else if (arg == "--cancel-on-disconnect") {
            opt.cancel_on_disconnect = true;
        } else if (arg == "--no-wait") {
            opt.no_wait = true;
        } else if (arg == "--stats-csv" && i + 1 < argc) {
            opt.stats_csv = argv[++i];
        } else if (arg == "--timeout-ms" && i + 1 < argc) {
            opt.timeout_ms = numericOption(arg, argv[++i]);
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else if (arg.find('=') != std::string::npos) {
            opt.spec += arg + " ";
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage();
        }
    }
    if (opt.socket_path.empty() || opt.tenant.empty())
        usage();

    const util::Fd fd = util::connectUnix(opt.socket_path);
    wire::FrameDecoder decoder;
    const bool draining = handshake(fd.get(), decoder, opt);
    if (draining && opt.action == Options::Action::Submit) {
        std::cerr << "aurora_submit: daemon is draining and refuses "
                     "new grids (AUR204)\n";
        return 1;
    }

    switch (opt.action) {
      case Options::Action::Submit:
        return doSubmit(fd.get(), decoder, opt);
      case Options::Action::Attach:
        return doAttach(fd.get(), decoder, opt);
      case Options::Action::Cancel:
        return doCancel(fd.get(), decoder, opt);
      case Options::Action::Status:
        return doStatus(fd.get(), decoder, opt);
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const util::SimError &e) {
        std::cerr << "aurora_submit: " << e.what() << "\n";
        return 1;
    }
}
