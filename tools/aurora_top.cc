/**
 * @file
 * aurora_top — live metrics console for the aurora_serve daemon.
 *
 * Usage:
 *   aurora_top --socket PATH [--tenant NAME] [--watch SECONDS]
 *              [--raw prom|json] [--timeout-ms N]
 *
 * One-shot by default: polls Status and Metrics once, renders a
 * compact dashboard, and exits. With --watch N it keeps the
 * connection open and refreshes every N seconds until interrupted.
 * --raw dumps the daemon's exposition verbatim (Prometheus text or
 * JSON) instead of the dashboard — the mode to use when piping into
 * a scrape pipeline or jq.
 *
 * Requires a v2 daemon (the Metrics request is a v2 message); a v1
 * daemon rejects the poll and aurora_top reports the skew instead of
 * rendering an empty screen.
 *
 * Exit codes: 0 ok; 1 connection/protocol errors; 2 usage.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/wire.hh"
#include "util/sim_error.hh"
#include "util/socket.hh"

namespace
{

using namespace aurora;
namespace wire = serve::wire;

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

[[noreturn]] void
usage()
{
    std::cerr << "usage: aurora_top --socket PATH [--tenant NAME]\n"
              << "                  [--watch SECONDS] [--raw prom|json]\n"
              << "                  [--timeout-ms N]\n";
    std::exit(2);
}

std::uint64_t
numericOption(const std::string &option, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        util::raiseError(util::SimErrorCode::BadConfig, "option ",
                         option, ": bad numeric value '", value, "'");
    return parsed;
}

struct Options
{
    std::string socket_path;
    std::string tenant = "aurora_top";
    std::uint64_t watch_seconds = 0;
    bool raw = false;
    wire::MetricsFormat format = wire::MetricsFormat::Prometheus;
    std::uint64_t timeout_ms = 0;
};

/**
 * One parsed Prometheus sample: "name value" or
 * "name{key=\"label\"} value". Enough of the text format for our own
 * exposition — this is not a general scraper.
 */
struct Sample
{
    std::string name;
    std::string label;
    double value = 0.0;
};

std::vector<Sample>
parsePrometheus(const std::string &body)
{
    std::vector<Sample> samples;
    std::istringstream in(body);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const auto space = line.rfind(' ');
        if (space == std::string::npos)
            continue;
        Sample s;
        s.value = std::strtod(line.c_str() + space + 1, nullptr);
        std::string key = line.substr(0, space);
        const auto brace = key.find('{');
        if (brace != std::string::npos) {
            // Single-label series: name{tenant="alice"}.
            const auto q1 = key.find('"', brace);
            const auto q2 =
                q1 == std::string::npos ? q1 : key.find('"', q1 + 1);
            if (q2 != std::string::npos)
                s.label = key.substr(q1 + 1, q2 - q1 - 1);
            key.resize(brace);
        }
        s.name = std::move(key);
        samples.push_back(std::move(s));
    }
    return samples;
}

void
printSection(const char *title, const std::vector<Sample> &samples,
             const std::string &prefix)
{
    bool any = false;
    for (const auto &s : samples) {
        if (s.name.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (!any) {
            std::cout << title << "\n";
            any = true;
        }
        std::cout << "  " << s.name.substr(prefix.size());
        if (!s.label.empty())
            std::cout << "{" << s.label << "}";
        std::cout << " = " << s.value << "\n";
    }
}

void
renderDashboard(const wire::StatusReportMsg &status,
                const std::string &prom_body)
{
    std::cout << "aurora_serve"
              << (status.draining ? " [DRAINING]" : "") << "  grids "
              << status.grids << " (" << status.done_grids
              << " done)  jobs queued=" << status.queued_jobs
              << " running=" << status.running_jobs
              << " done=" << status.done_jobs << "\n\n";
    const auto samples = parsePrometheus(prom_body);
    printSection("serve", samples, "aurora_serve_");
    printSection("fleet", samples, "aurora_fleet_");
    // Anything outside the two known families, verbatim — a renamed
    // metric should show up oddly placed rather than vanish.
    bool any = false;
    for (const auto &s : samples) {
        if (s.name.compare(0, 13, "aurora_serve_") == 0 ||
            s.name.compare(0, 13, "aurora_fleet_") == 0)
            continue;
        if (!any) {
            std::cout << "other\n";
            any = true;
        }
        std::cout << "  " << s.name << " = " << s.value << "\n";
    }
}

/**
 * Receive frames until one of the wanted type arrives, skipping
 * broadcasts (Draining, stray Progress/Result from the daemon's
 * fan-out). A Rejected frame is fatal — surfaced as the reason.
 */
std::string
recvOfType(int fd, wire::FrameDecoder &decoder, const Options &opt,
           wire::MsgType wanted)
{
    while (true) {
        const auto payload =
            wire::recvFrame(fd, decoder, opt.timeout_ms);
        if (!payload)
            util::raiseError(util::SimErrorCode::BadWire,
                             "daemon closed the connection");
        const auto type = wire::peekType(*payload);
        if (type == wanted)
            return *payload;
        if (type == wire::MsgType::Rejected) {
            const auto rejected = wire::decodeRejected(*payload);
            util::raiseError(util::SimErrorCode::BadWire, "daemon "
                             "rejected the poll (", rejected.id, "): ",
                             rejected.message);
        }
        // Draining and other broadcasts: note and keep waiting.
    }
}

int
run(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            opt.socket_path = argv[++i];
        } else if (arg == "--tenant" && i + 1 < argc) {
            opt.tenant = argv[++i];
        } else if (arg == "--watch" && i + 1 < argc) {
            opt.watch_seconds = numericOption(arg, argv[++i]);
            if (opt.watch_seconds == 0)
                usage();
        } else if (arg == "--raw" && i + 1 < argc) {
            opt.raw = true;
            const std::string fmt = argv[++i];
            if (fmt == "prom")
                opt.format = wire::MetricsFormat::Prometheus;
            else if (fmt == "json")
                opt.format = wire::MetricsFormat::Json;
            else
                usage();
        } else if (arg == "--timeout-ms" && i + 1 < argc) {
            opt.timeout_ms = numericOption(arg, argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            usage();
        }
    }
    if (opt.socket_path.empty())
        usage();

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    const util::Fd fd = util::connectUnix(opt.socket_path);
    wire::FrameDecoder decoder;

    wire::HelloMsg hello;
    hello.tenant = opt.tenant;
    wire::sendFrame(fd.get(), wire::encode(hello));
    const auto welcome = wire::decodeWelcome(
        recvOfType(fd.get(), decoder, opt, wire::MsgType::Welcome));
    if (welcome.version < 2)
        util::raiseError(util::SimErrorCode::BadWire,
                         "daemon speaks protocol version ",
                         welcome.version,
                         " which predates the Metrics request");

    while (true) {
        wire::sendFrame(fd.get(), wire::encode(wire::StatusMsg{}));
        const auto status = wire::decodeStatusReport(recvOfType(
            fd.get(), decoder, opt, wire::MsgType::StatusReport));

        wire::MetricsMsg metrics;
        metrics.format = opt.raw ? opt.format
                                 : wire::MetricsFormat::Prometheus;
        wire::sendFrame(fd.get(), wire::encode(metrics));
        const auto report = wire::decodeMetricsReport(recvOfType(
            fd.get(), decoder, opt, wire::MsgType::MetricsReport));

        if (opt.watch_seconds != 0)
            std::cout << "\033[H\033[2J"; // home + clear, like top(1)
        if (opt.raw)
            std::cout << report.body;
        else
            renderDashboard(status, report.body);
        std::cout.flush();

        if (opt.watch_seconds == 0 || g_stop)
            return 0;
        for (std::uint64_t s = 0; s < opt.watch_seconds && !g_stop;
             ++s)
            std::this_thread::sleep_for(std::chrono::seconds(1));
        if (g_stop)
            return 0;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const util::SimError &e) {
        std::cerr << "aurora_top: " << e.what() << "\n";
        return 1;
    }
}
