/**
 * @file
 * FPU tuning walkthrough: reproduces the §5.7-§5.11 decision process
 * that led to the recommended FPU — pick an issue policy, size the
 * decoupling queues and reorder buffer, then trade functional-unit
 * latency against area — and prints the final recommendation.
 *
 *   ./fpu_tuning [instructions-per-run]
 */

#include <cstdlib>
#include <iostream>

#include "core/simulator.hh"
#include "cost/rbe.hh"
#include "trace/spec_profiles.hh"
#include "util/table.hh"

namespace
{

using namespace aurora;
using namespace aurora::core;

Count g_insts = 120'000;

double
fpCpi(const MachineConfig &m)
{
    Accumulator acc;
    for (const auto &p : trace::floatSuite())
        acc.add(simulate(m, p, g_insts).cpi());
    return acc.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1)
        g_insts = std::strtoull(argv[1], nullptr, 10);

    std::cout << "Step 1: issue policy (S5.8)\n";
    {
        Table t({"policy", "CPI avg"});
        for (auto pol : {fpu::IssuePolicy::InOrderComplete,
                         fpu::IssuePolicy::OutOfOrderSingle,
                         fpu::IssuePolicy::OutOfOrderDual}) {
            auto m = baselineModel();
            m.fpu.policy = pol;
            t.row().cell(fpu::issuePolicyName(pol)).cell(fpCpi(m), 3);
        }
        t.print(std::cout);
    }

    std::cout << "Step 2: queue depths under dual issue (S5.9)\n";
    {
        Table t({"instruction queue", "CPI avg"});
        for (unsigned q : {1u, 3u, 5u, 7u}) {
            auto m = baselineModel();
            m.fpu.inst_queue = q;
            t.row().cell(std::uint64_t{q}).cell(fpCpi(m), 3);
        }
        t.print(std::cout);
        std::cout << "-> 5 entries: deeper buys nothing.\n\n";
    }

    std::cout << "Step 3: functional unit latency vs area (S5.10)\n";
    {
        Table t({"add latency", "CPI avg", "add area RBE",
                 "CPI*area (lower=better)"});
        for (Cycle lat = 2; lat <= 4; ++lat) {
            auto m = baselineModel();
            m.fpu.add.latency = lat;
            const double cpi = fpCpi(m);
            const double area = cost::fpAddRbe(lat, true);
            t.row()
                .cell(std::uint64_t{lat})
                .cell(cpi, 3)
                .cell(area, 0)
                .cell(cpi * area / 1000.0, 1);
        }
        t.print(std::cout);
        std::cout << "-> a 2-cycle add gains ~2% over 3 cycles but "
                     "costs ~20% more area: pick 3.\n\n";
    }

    std::cout << "Recommended FPU (S5.11):\n";
    {
        const fpu::FpuConfig rec; // defaults are the recommendation
        std::cout << "  policy:             "
                  << fpu::issuePolicyName(rec.policy) << "\n"
                  << "  instruction queue:  " << rec.inst_queue
                  << " entries\n"
                  << "  load data queue:    " << rec.load_queue
                  << " entries\n"
                  << "  reorder buffer:     " << rec.rob_entries
                  << " entries\n"
                  << "  add unit:           " << rec.add.latency
                  << " cycles\n"
                  << "  multiply unit:      " << rec.mul.latency
                  << " cycles\n"
                  << "  divide unit:        " << rec.div.latency
                  << " cycles\n"
                  << "  result busses:      " << rec.result_buses
                  << "\n"
                  << "  total FPU area:     "
                  << formatFixed(cost::fpuRbe(rec), 0) << " RBE\n";
        const double cpi = fpCpi(baselineModel());
        std::cout << "  SPECfp92 CPI:       " << formatFixed(cpi, 3)
                  << "\n";
    }
    return 0;
}
