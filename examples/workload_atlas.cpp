/**
 * @file
 * Workload atlas: characterizes all 15 synthetic SPEC92 workloads —
 * instruction mix, footprints, sequentiality — and optionally writes
 * a benchmark's trace to a file for external tools.
 *
 *   ./workload_atlas                    # print the atlas
 *   ./workload_atlas dump gcc gcc.aur3  # capture 200k instructions
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "trace/spec_profiles.hh"
#include "trace/synthetic_workload.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace aurora;
    using namespace aurora::trace;

    if (argc == 4 && std::string(argv[1]) == "dump") {
        SyntheticWorkload w(profileByName(argv[2]));
        writeTrace(argv[3], collect(w, 200'000));
        std::cout << "wrote 200000 instructions of " << argv[2]
                  << " to " << argv[3] << "\n";
        return 0;
    }

    constexpr Count N = 200'000;
    Table t({"benchmark", "alu%", "load%", "store%", "fp%", "ctl%",
             "code KB", "data KB", "seq-data%"});
    auto atlas_row = [&](const WorkloadProfile &p) {
        SyntheticWorkload w(p);
        const TraceStats s = analyze(w, N);
        const double fp = s.frac(OpClass::FpAdd) +
                          s.frac(OpClass::FpMul) +
                          s.frac(OpClass::FpDiv) +
                          s.frac(OpClass::FpCvt) +
                          s.frac(OpClass::FpLoad) +
                          s.frac(OpClass::FpStore);
        const double ctl =
            s.frac(OpClass::Branch) + s.frac(OpClass::Jump);
        const double seq =
            s.data_refs
                ? 100.0 * static_cast<double>(s.seq_data_refs) /
                      static_cast<double>(s.data_refs)
                : 0.0;
        t.row()
            .cell(p.name)
            .cell(100.0 * s.frac(OpClass::IntAlu), 1)
            .cell(100.0 * s.frac(OpClass::Load), 1)
            .cell(100.0 * s.frac(OpClass::Store), 1)
            .cell(100.0 * fp, 1)
            .cell(100.0 * ctl, 1)
            .cell(static_cast<double>(s.unique_code_lines) * 32 /
                      1024.0,
                  1)
            .cell(static_cast<double>(s.unique_data_lines) * 32 /
                      1024.0,
                  1)
            .cell(seq, 1);
    };
    for (const auto &p : integerSuite())
        atlas_row(p);
    for (const auto &p : floatSuite())
        atlas_row(p);
    t.print(std::cout,
            "Synthetic SPEC92 workload atlas (200k instructions)");
    return 0;
}
