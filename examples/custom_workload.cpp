/**
 * @file
 * Building a custom workload: the WorkloadProfile API end to end.
 *
 * Models a hypothetical database-like engine — large code footprint,
 * pointer-heavy index walks, a sequential log writer — then asks
 * the study's question for it: which Table 1 machine should run it,
 * and is a second pipeline worth 8192 RBE?
 */

#include <iostream>

#include "core/report.hh"
#include "core/simulator.hh"
#include "trace/trace_stats.hh"
#include "trace/synthetic_workload.hh"

int
main()
{
    using namespace aurora;
    using namespace aurora::core;

    // 1. Describe the program's structure.
    trace::WorkloadProfile db;
    db.name = "dbengine";
    db.seed = 0xdb01;
    db.frac_load = 0.27;          // index probes dominate
    db.frac_store = 0.09;         // log + page updates
    db.hot_code_bytes = 5 * 1024; // big operator kernels
    db.cold_code_bytes = 256 * 1024;
    db.num_hot_loops = 14;
    db.mean_trips = 8.0;          // short per-row loops
    db.hot_fraction = 0.75;       // lots of cold path (parser, ...)
    db.total_data_bytes = 8 * 1024 * 1024; // buffer pool
    db.chase_fraction = 0.55;     // B-tree descent
    db.chase_hot_frac = 0.90;     // hot index upper levels
    db.seq_fraction = 0.20;       // scans + log
    db.stack_fraction = 0.25;
    db.store_burst_frac = 0.50;   // log records are sequential
    db.load_use_frac = 0.60;      // pointer chains use loads at once

    // 2. Sanity-check the stream we built.
    {
        trace::SyntheticWorkload w(db);
        const auto stats = trace::analyze(w, 100'000);
        std::cout << "workload check:\n" << stats.summary() << "\n";
    }

    // 3. Ask the resource-allocation question for this workload.
    std::vector<SuiteResult> rows;
    for (const auto &m : studyModels())
        rows.push_back(runSuite(m, {db}, 300'000));
    comparisonTable(rows).print(std::cout,
                                "dbengine across the Table 1 models");

    // 4. Is dual issue worth it here?
    const double dual =
        simulate(baselineModel(), db, 300'000).cpi();
    const double single =
        simulate(baselineModel().withIssueWidth(1), db, 300'000)
            .cpi();
    std::cout << "dual issue buys "
              << formatFixed(100.0 * (single - dual) / single, 1)
              << "% on dbengine for 8192 RBE ("
              << formatFixed(
                     100.0 * 8192.0 /
                         baselineModel().withIssueWidth(1).rbeCost(),
                     1)
              << "% more area)\n"
              << "(pointer-chasing workloads are exactly where the "
                 "paper warns superscalar issue pays least)\n";
    return 0;
}
