/**
 * @file
 * Quickstart: simulate one benchmark on the baseline Aurora III and
 * print the headline statistics.
 *
 *   ./quickstart [benchmark] [instructions]
 *
 * e.g. ./quickstart espresso 500000
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/simulator.hh"
#include "trace/spec_profiles.hh"

int
main(int argc, char **argv)
{
    using namespace aurora;
    using namespace aurora::core;

    const std::string bench = argc > 1 ? argv[1] : "espresso";
    const Count insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400'000;

    // 1. Pick a workload: one of the 15 SPEC92 benchmark profiles.
    const auto profile = trace::profileByName(bench);

    // 2. Pick a machine: Table 1's baseline (2K I$, 32K D$, 4-line
    //    write cache, 6-entry ROB, 4 stream buffers, 2 MSHRs, dual
    //    issue, 17-cycle secondary latency).
    const auto machine = baselineModel();

    // 3. Run.
    const RunResult r = simulate(machine, profile, insts);

    std::cout << "Aurora III baseline running " << bench << "\n"
              << "  instructions      " << r.instructions << "\n"
              << "  cycles            " << r.cycles << "\n"
              << "  CPI               " << formatFixed(r.cpi(), 3)
              << "\n"
              << "  I-cache hit       "
              << formatFixed(r.icache_hit_pct, 1) << "%\n"
              << "  D-cache hit       "
              << formatFixed(r.dcache_hit_pct, 1) << "%\n"
              << "  I-prefetch hit    "
              << formatFixed(r.iprefetch_hit_pct, 1) << "%\n"
              << "  D-prefetch hit    "
              << formatFixed(r.dprefetch_hit_pct, 1) << "%\n"
              << "  write-cache hit   "
              << formatFixed(r.write_cache_hit_pct, 1) << "%\n"
              << "  store traffic     "
              << formatFixed(r.storeTrafficPct(), 1)
              << "% of stores\n"
              << "  IPU cost          " << formatFixed(r.rbe_cost, 0)
              << " RBE\n\n"
              << "stall breakdown (CPI):\n";
    for (std::size_t c = 0; c < NUM_STALL_CAUSES; ++c) {
        const auto cause = static_cast<StallCause>(c);
        std::cout << "  " << stallCauseName(cause) << ": "
                  << formatFixed(r.stallCpi(cause), 3) << "\n";
    }
    return 0;
}
