/**
 * @file
 * Design-space exploration: the resource-allocation question the
 * paper asks, as a library client. Sweeps I-cache size, write cache,
 * reorder buffer, MSHRs and issue width, prices each configuration
 * with the RBE model, and prints the Pareto frontier of (cost, CPI)
 * over the integer suite — i.e. which machines are worth building.
 *
 *   ./design_space_explorer [instructions-per-run]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/simulator.hh"
#include "trace/spec_profiles.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace aurora;
    using namespace aurora::core;

    const Count insts =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120'000;
    const auto suite = trace::integerSuite();

    struct Point
    {
        MachineConfig config;
        double cost = 0.0;
        double cpi = 0.0;
    };
    std::vector<Point> points;

    // Cross the headline resources; derive everything else from the
    // baseline so the sweep isolates the structures under study.
    for (std::uint32_t icache : {1024u, 2048u, 4096u}) {
        for (unsigned wc : {2u, 4u, 8u}) {
            for (unsigned rob : {2u, 6u, 8u}) {
                for (unsigned mshr : {1u, 2u, 4u}) {
                    for (unsigned width : {1u, 2u}) {
                        auto m = baselineModel().withIssueWidth(width);
                        m.ifu.icache_bytes = icache;
                        m.write_cache.lines = wc;
                        m.rob_entries = rob;
                        m.lsu.mshr_entries = mshr;
                        m.name = std::to_string(icache / 1024) +
                                 "K/wc" + std::to_string(wc) + "/rob" +
                                 std::to_string(rob) + "/mshr" +
                                 std::to_string(mshr) + "/x" +
                                 std::to_string(width);
                        Point pt;
                        pt.config = m;
                        pt.cost = m.rbeCost();
                        pt.cpi = runSuite(m, suite, insts).avgCpi();
                        points.push_back(std::move(pt));
                    }
                }
            }
        }
    }

    // Pareto frontier: keep points no other point dominates.
    std::sort(points.begin(), points.end(),
              [](const Point &a, const Point &b) {
                  return a.cost < b.cost;
              });
    std::vector<const Point *> frontier;
    double best_cpi = 1e9;
    for (const Point &p : points) {
        if (p.cpi < best_cpi) {
            best_cpi = p.cpi;
            frontier.push_back(&p);
        }
    }

    Table t({"configuration", "cost (RBE)", "CPI avg"});
    for (const Point *p : frontier)
        t.row().cell(p->config.name).cell(p->cost, 0).cell(p->cpi, 3);
    t.print(std::cout,
            "Pareto-efficient machines (" +
                std::to_string(points.size()) +
                " configurations explored)");

    // How do the paper's named models fare against the frontier?
    std::cout << "Reference points:\n";
    for (const auto &m :
         {smallModel(), baselineModel(), largeModel(),
          recommendedModel()}) {
        const double cpi = runSuite(m, suite, insts).avgCpi();
        std::cout << "  " << m.name << ": cost "
                  << formatFixed(m.rbeCost(), 0) << " RBE, CPI "
                  << formatFixed(cpi, 3) << "\n";
    }
    return 0;
}
