/**
 * @file
 * A guided tour of the Aurora III memory hierarchy using the public
 * component APIs directly (no trace, no processor): crafted access
 * patterns show what each mechanism does and why the paper included
 * it. Run it and read along.
 */

#include <iostream>

#include "mem/biu.hh"
#include "mem/cache.hh"
#include "mem/mshr.hh"
#include "mem/stream_buffer.hh"
#include "mem/victim_cache.hh"
#include "mem/write_cache.hh"
#include "util/stats.hh"

using namespace aurora;
using namespace aurora::mem;

namespace
{

void
section(const char *title)
{
    std::cout << "\n--- " << title << " ---\n";
}

void
tourStreamBuffers()
{
    section("stream buffers (the Prefetch Unit, S2.2)");
    Biu biu(BiuConfig{17, 4, 8});
    PrefetchUnit pfu({4, 4, 32, true}, biu);

    // A sequential instruction stream missing line after line: the
    // first miss allocates a buffer, subsequent lines hit it.
    Cycle now = 0;
    int hits = 0;
    for (Addr a = 0x1000; a < 0x1100; a += 32) {
        hits += pfu.missLookup(a, now, true).hit ? 1 : 0;
        now += 20;
    }
    std::cout << "sequential code misses: " << hits
              << "/8 served by the stream buffers\n";

    // A pointer chase: no sequential structure, nothing to prefetch.
    hits = 0;
    Addr a = 0x100000;
    for (int i = 0; i < 8; ++i) {
        a = a * 1103515245u + 12345u;
        hits += pfu.missLookup(a & ~3u, now, false).hit ? 1 : 0;
        now += 20;
    }
    std::cout << "pointer-chase misses:   " << hits
              << "/8 served (nothing sequential to predict)\n";
}

void
tourWriteCache()
{
    section("the coalescing write cache (S2.3)");
    Biu biu(BiuConfig{17, 4, 8});
    WriteCache wc(WriteCacheConfig{}, biu);

    // An inner loop updating its index: one line absorbs them all.
    for (Cycle t = 0; t < 64; ++t)
        wc.store(0x7fff0010, 4, t);
    // A vector-like fill of one line: eight stores, one transaction.
    for (Addr a = 0x20000000; a < 0x20000020; a += 4)
        wc.store(a, 4, 100);
    wc.drain(200);
    std::cout << wc.stores() << " stores became "
              << wc.storeTransactions()
              << " BIU transactions (hit rate "
              << formatFixed(wc.hitRate().percent(), 1) << "%)\n";
}

void
tourMshrs()
{
    section("MSHRs: the non-blocking cache (S2.3, Fig 7)");
    MshrFile one(1), four(4);

    // Four misses arrive back-to-back; completion takes 21 cycles.
    // With one MSHR they serialize; with four they overlap.
    Cycle now = 0, done_serial = 0;
    for (int i = 0; i < 4; ++i) {
        // wait until the single register frees
        while (one.full()) {
            ++now;
            one.retire(now);
        }
        one.allocate(0x1000 + 32u * static_cast<Addr>(i), now + 21);
        done_serial = now + 21;
    }
    for (int i = 0; i < 4; ++i)
        four.allocate(0x1000 + 32u * static_cast<Addr>(i), 21);
    std::cout << "4 overlapping misses finish at cycle 21 with 4 "
                 "MSHRs, at cycle "
              << done_serial << " with 1 (fully serialized)\n";
}

void
tourVictimCache()
{
    section("victim cache (the Jouppi alternative, DESIGN.md S6)");
    DirectMappedCache cache(1024, 32);
    VictimCache victims(4, 32);

    // Two addresses that collide in a 1 KB direct-mapped cache.
    const Addr a = 0x0000, b = 0x0400;
    int off_chip = 0;
    for (int i = 0; i < 8; ++i) {
        const Addr addr = (i % 2) ? b : a;
        if (!cache.probe(addr) && !victims.probe(addr, i))
            ++off_chip;
        if (const auto evicted = cache.fill(addr))
            victims.insert(*evicted, i);
    }
    std::cout << "ping-pong conflict pair: " << off_chip
              << "/8 accesses went off chip (first two only)\n";
}

void
tourBiu()
{
    section("BIU bandwidth (S2, [14])");
    Biu biu(BiuConfig{17, 4, 8});
    // A burst of demand misses: each line transfer occupies the bus,
    // so completions spread out even though latency is constant.
    Cycle first = biu.requestLine(0, false);
    Cycle last = first;
    for (int i = 0; i < 7; ++i)
        last = biu.requestLine(0, false);
    std::cout << "8 simultaneous line fetches: first done at cycle "
              << first << ", last at " << last
              << " (bus serializes transfers)\n";
}

} // namespace

int
main()
{
    std::cout << "Aurora III memory hierarchy tour\n";
    tourStreamBuffers();
    tourWriteCache();
    tourMshrs();
    tourVictimCache();
    tourBiu();
    std::cout << "\nAll of these compose inside ipu::Lsu / ipu::Ifu; "
                 "see examples/quickstart.cpp for the full machine.\n";
    return 0;
}
