#!/usr/bin/env bash
# Performance baseline: run the google-benchmark microbenchmarks and a
# timed per-benchmark sweep of the full SPEC profile suite, then write
# the combined numbers to BENCH_perf.json (ROADMAP item 1's perf
# trajectory baseline).
#
#   scripts/bench_perf.sh                 # writes ./BENCH_perf.json
#   AURORA_BENCH_PERF_OUT=out.json \
#   AURORA_BENCH_PERF_INSTS=50000 scripts/bench_perf.sh
#
# The sweep section reports, per benchmark: simulated instructions,
# simulated cycles, wall-clock seconds, and the derived simulator
# throughput (insts/sec and cycles/sec of host time). The microbench
# section embeds google-benchmark's own JSON verbatim so its schema
# (items_per_second etc.) is preserved bit-for-bit.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${AURORA_BENCH_PERF_OUT:-BENCH_perf.json}"
insts="${AURORA_BENCH_PERF_INSTS:-100000}"

cmake --preset release
cmake --build --preset release -j "$(nproc)" \
    --target bench_perf_microbench aurora_sim
sim=build/tools/aurora_sim

dir="$(mktemp -d)"
trap 'rm -rf "${dir}"' EXIT

# ---- microbenchmarks ------------------------------------------------
build/bench/bench_perf_microbench \
    --benchmark_out="${dir}/micro.json" \
    --benchmark_out_format=json > /dev/null

# ---- timed sweep, one run per profile -------------------------------
# Times each benchmark individually so the JSON carries a per-bench
# wall-time trajectory, not just a suite aggregate.
benches="espresso li eqntott compress sc gcc \
         alvinn doduc ear hydro2d mdljdp2 nasa7 ora spice2g6 su2cor"
{
    first=1
    printf '['
    total_insts=0
    total_cycles=0
    total_ns=0
    for bench in ${benches}; do
        start="$(date +%s%N)"
        "${sim}" --bench "${bench}" --insts "${insts}" \
            --stats-csv "${dir}/row.csv" > /dev/null
        end="$(date +%s%N)"
        ns=$((end - start))
        # CSV columns: model,benchmark,instructions,cycles,...
        read -r row_insts row_cycles < <(
            awk -F, 'NR == 2 { print $3, $4 }' "${dir}/row.csv")
        total_insts=$((total_insts + row_insts))
        total_cycles=$((total_cycles + row_cycles))
        total_ns=$((total_ns + ns))
        [ "${first}" -eq 1 ] || printf ','
        first=0
        awk -v bench="${bench}" -v insts="${row_insts}" \
            -v cycles="${row_cycles}" -v ns="${ns}" 'BEGIN {
            secs = ns / 1e9
            printf "\n  {\"benchmark\": \"%s\", ", bench
            printf "\"instructions\": %d, \"cycles\": %d, ",
                   insts, cycles
            printf "\"wall_seconds\": %.6f, ", secs
            printf "\"insts_per_sec\": %.1f, ", insts / secs
            printf "\"cycles_per_sec\": %.1f}", cycles / secs
        }'
    done
    printf '\n]'
} > "${dir}/sweep.json"

# ---- assemble -------------------------------------------------------
{
    printf '{\n'
    printf '"schema": "aurora.bench_perf.v1",\n'
    printf '"insts_per_bench": %d,\n' "${insts}"
    awk -v insts="${total_insts}" -v cycles="${total_cycles}" \
        -v ns="${total_ns}" 'BEGIN {
        secs = ns / 1e9
        printf "\"sweep_total\": {\"instructions\": %d, ", insts
        printf "\"cycles\": %d, \"wall_seconds\": %.6f, ",
               cycles, secs
        printf "\"insts_per_sec\": %.1f, ", insts / secs
        printf "\"cycles_per_sec\": %.1f},\n", cycles / secs
    }'
    printf '"sweep": '
    cat "${dir}/sweep.json"
    printf ',\n"microbench": '
    cat "${dir}/micro.json"
    printf '\n}\n'
} > "${out}"

# Validate when a JSON tool is on the host; absence is a skip.
if command -v jq > /dev/null 2>&1; then
    jq -e '.schema == "aurora.bench_perf.v1"' "${out}" > /dev/null
    echo "bench_perf: ${out} validated"
fi
echo "bench_perf: wrote ${out}"
