#!/usr/bin/env bash
# Performance baseline: run the google-benchmark microbenchmarks, a
# timed per-benchmark sweep of the full SPEC profile suite, and a
# 1/2/4-shard distributed sweep of the same grid, then write the
# combined numbers to BENCH_perf.json (ROADMAP item 1's perf
# trajectory baseline).
#
#   scripts/bench_perf.sh                 # writes ./BENCH_perf.json
#   scripts/bench_perf.sh --append        # ...and appends one trend
#                                         # line to BENCH_perf_trend.jsonl
#   AURORA_BENCH_PERF_OUT=out.json \
#   AURORA_BENCH_PERF_INSTS=50000 scripts/bench_perf.sh
#
# BENCH_perf.json is committed and diffed, so it must contain only
# reproducible-run-to-run fields: the volatile google-benchmark
# context (date, host_name) is stripped from the embedded microbench
# JSON and recorded instead on the --append trend line, which is
# where when/where belongs.
#
# The sweep section reports, per benchmark: simulated instructions,
# simulated cycles, wall-clock seconds, and the derived simulator
# throughput (insts/sec and cycles/sec of host time). The shard_sweep
# section runs the identical grid through aurora_swarm with 1, 2, and
# 4 fork-mode shard workers and reports the same throughput numbers
# plus the speedup against the serial sweep — the scale-out
# trajectory next to the single-process one. The serve_latency
# section runs a burst of grids through a live aurora_serve daemon
# and records submit→first-Result and submit→GridDone percentiles
# from the daemon's own metrics exposition. The model section tracks
# the analytic bound's calibration gap against measured IPC and the
# wall-clock cost of pruning a 1000-point analyze-grid cross product.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${AURORA_BENCH_PERF_OUT:-BENCH_perf.json}"
trend="${AURORA_BENCH_PERF_TREND:-BENCH_perf_trend.jsonl}"
insts="${AURORA_BENCH_PERF_INSTS:-100000}"
append=0
for arg in "$@"; do
    case "${arg}" in
      --append) append=1 ;;
      *)
        echo "usage: $0 [--append]" >&2
        exit 2
        ;;
    esac
done

cmake --preset release
cmake --build --preset release -j "$(nproc)" \
    --target bench_perf_microbench aurora_sim aurora_swarm aurora_lint \
             aurora_serve aurora_submit aurora_top
sim=build/tools/aurora_sim
swarm=build/tools/aurora_swarm
lint=build/tools/aurora_lint
serve=build/tools/aurora_serve
submit=build/tools/aurora_submit
top=build/tools/aurora_top

dir="$(mktemp -d)"
trap 'rm -rf "${dir}"' EXIT

# ---- microbenchmarks ------------------------------------------------
build/bench/bench_perf_microbench \
    --benchmark_out="${dir}/micro.json" \
    --benchmark_out_format=json > /dev/null
# Drop the volatile context fields so the committed file diffs clean
# between runs on the same toolchain (they re-appear on the trend
# line below).
sed -E '/^[[:space:]]*"(date|host_name)":/d' "${dir}/micro.json" \
    > "${dir}/micro_stable.json"

# ---- timed sweep, one run per profile -------------------------------
# Times each benchmark individually so the JSON carries a per-bench
# wall-time trajectory, not just a suite aggregate.
benches="espresso li eqntott compress sc gcc \
         alvinn doduc ear hydro2d mdljdp2 nasa7 ora spice2g6 su2cor"
{
    first=1
    printf '['
    total_insts=0
    total_cycles=0
    total_ns=0
    for bench in ${benches}; do
        start="$(date +%s%N)"
        "${sim}" --bench "${bench}" --insts "${insts}" \
            --stats-csv "${dir}/row.csv" > /dev/null
        end="$(date +%s%N)"
        ns=$((end - start))
        # CSV columns: model,benchmark,instructions,cycles,...
        read -r row_insts row_cycles < <(
            awk -F, 'NR == 2 { print $3, $4 }' "${dir}/row.csv")
        total_insts=$((total_insts + row_insts))
        total_cycles=$((total_cycles + row_cycles))
        total_ns=$((total_ns + ns))
        [ "${first}" -eq 1 ] || printf ','
        first=0
        awk -v bench="${bench}" -v insts="${row_insts}" \
            -v cycles="${row_cycles}" -v ns="${ns}" 'BEGIN {
            secs = ns / 1e9
            printf "\n  {\"benchmark\": \"%s\", ", bench
            printf "\"instructions\": %d, \"cycles\": %d, ",
                   insts, cycles
            printf "\"wall_seconds\": %.6f, ", secs
            printf "\"insts_per_sec\": %.1f, ", insts / secs
            printf "\"cycles_per_sec\": %.1f}", cycles / secs
        }'
    done
    printf '\n]'
} > "${dir}/sweep.json"

# ---- distributed sweep: the same grid across 1/2/4 shards -----------
# Fork-mode aurora_swarm over the identical (machine x suite) grid;
# bit-identity with the serial run is check.sh's job, throughput is
# ours. The wall time includes fleet spawn, lease handshakes, and the
# merge — the honest end-to-end cost of scale-out.
{
    first=1
    printf '['
    for shards in 1 2 4; do
        start="$(date +%s%N)"
        "${swarm}" --socket "${dir}/swarm.sock" \
            --journal-dir "${dir}/swarm_journals" \
            --shards "${shards}" --bench all --insts "${insts}" \
            --csv > /dev/null
        end="$(date +%s%N)"
        rm -rf "${dir}/swarm_journals" "${dir}/swarm.sock"
        ns=$((end - start))
        [ "${first}" -eq 1 ] || printf ','
        first=0
        awk -v shards="${shards}" -v insts="${total_insts}" \
            -v ns="${ns}" -v serial_ns="${total_ns}" 'BEGIN {
            secs = ns / 1e9
            printf "\n  {\"shards\": %d, ", shards
            printf "\"instructions\": %d, ", insts
            printf "\"wall_seconds\": %.6f, ", secs
            printf "\"insts_per_sec\": %.1f, ", insts / secs
            printf "\"speedup_vs_serial\": %.3f}", serial_ns / ns
        }'
    done
    printf '\n]'
} > "${dir}/shard_sweep.json"

# ---- serve-path latency ---------------------------------------------
# Submit→first-Result and submit→GridDone percentiles for a burst of
# small single-bench grids, as measured by the daemon's own latency
# histograms and scraped through the Metrics wire request — the same
# numbers aurora_top shows live, so the baseline and the console can
# never disagree about what "latency" means.
serve_grids="${AURORA_BENCH_PERF_SERVE_GRIDS:-12}"
rm -rf "${dir}/serve_spool" "${dir}/serve.sock"
"${serve}" --socket "${dir}/serve.sock" --spool "${dir}/serve_spool" \
    --workers 2 --quiet &
serve_pid=$!
i=0
while [ ! -S "${dir}/serve.sock" ] && [ "${i}" -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
done
for g in $(seq 1 "${serve_grids}"); do
    # Distinct base seeds keep the fingerprints unique, so every
    # submission is a fresh grid, not an attach to the previous one.
    "${submit}" --socket "${dir}/serve.sock" --tenant bench \
        --bench espresso --insts "${insts}" --base-seed "${g}" \
        --quiet --timeout-ms 120000 > /dev/null
done
"${top}" --socket "${dir}/serve.sock" --raw prom \
    --timeout-ms 120000 > "${dir}/serve_prom.txt"
kill -TERM "${serve_pid}"
wait "${serve_pid}"
quantile() { # metric quantile -> value
    awk -v m="aurora_serve_$1" -v q="$2" \
        '$1 == m "{quantile=\"" q "\"}" { print $2; found = 1 }
         END { if (!found) print 0 }' "${dir}/serve_prom.txt"
}
metric_count() {
    awk -v m="aurora_serve_$1_count" \
        '$1 == m { print $2; found = 1 } END { if (!found) print 0 }' \
        "${dir}/serve_prom.txt"
}
{
    printf '{\n  "grids": %d,\n' "${serve_grids}"
    printf '  "submit_to_first_result_ms": '
    printf '{"p50": %s, "p90": %s, "p99": %s, "count": %s},\n' \
        "$(quantile submit_to_first_result_ms 0.5)" \
        "$(quantile submit_to_first_result_ms 0.9)" \
        "$(quantile submit_to_first_result_ms 0.99)" \
        "$(metric_count submit_to_first_result_ms)"
    printf '  "submit_to_grid_done_ms": '
    printf '{"p50": %s, "p90": %s, "p99": %s, "count": %s}\n}' \
        "$(quantile submit_to_grid_done_ms 0.5)" \
        "$(quantile submit_to_grid_done_ms 0.9)" \
        "$(quantile submit_to_grid_done_ms 0.99)" \
        "$(metric_count submit_to_grid_done_ms)"
} > "${dir}/serve_latency.json"

# ---- analytic model: calibration gap + grid-pruning throughput ------
# The calibration harness reruns the fig4/fig9 study grids and reports
# how tight the static bound is against measured IPC (soundness is its
# exit status; the distribution lands here). The throughput half times
# a 1000-point `analyze-grid` cross product — the "prune before you
# simulate" workflow the model exists for.
AURORA_MODEL_INSTS="${insts}" AURORA_MODEL_OUT="${dir}/model_cal.json" \
    scripts/model_calibration.sh > /dev/null
grid_start="$(date +%s%N)"
"${lint}" analyze-grid model=baseline \
    --vary mshr=1,2,3,4,5 --vary rob=2,4,6,8,10 \
    --vary wc_lines=1,2,4,8 --vary pf_buffers=2,4,6,8,10 \
    --vary fp_instq=3,6 --profile int --csv > "${dir}/grid.csv"
grid_end="$(date +%s%N)"
grid_points=$(($(wc -l < "${dir}/grid.csv") - 1))
{
    printf '{\n"calibration": '
    cat "${dir}/model_cal.json"
    awk -v points="${grid_points}" \
        -v ns="$((grid_end - grid_start))" 'BEGIN {
        secs = ns / 1e9
        printf ",\n\"grid_points\": %d,\n", points
        printf "\"grid_wall_seconds\": %.6f,\n", secs
        printf "\"grid_points_per_sec\": %.1f\n}", points / secs
    }'
} > "${dir}/model.json"

# ---- assemble -------------------------------------------------------
{
    printf '{\n'
    printf '"schema": "aurora.bench_perf.v4",\n'
    printf '"insts_per_bench": %d,\n' "${insts}"
    awk -v insts="${total_insts}" -v cycles="${total_cycles}" \
        -v ns="${total_ns}" 'BEGIN {
        secs = ns / 1e9
        printf "\"sweep_total\": {\"instructions\": %d, ", insts
        printf "\"cycles\": %d, \"wall_seconds\": %.6f, ",
               cycles, secs
        printf "\"insts_per_sec\": %.1f, ", insts / secs
        printf "\"cycles_per_sec\": %.1f},\n", cycles / secs
    }'
    printf '"sweep": '
    cat "${dir}/sweep.json"
    printf ',\n"shard_sweep": '
    cat "${dir}/shard_sweep.json"
    printf ',\n"serve_latency": '
    cat "${dir}/serve_latency.json"
    printf ',\n"model": '
    cat "${dir}/model.json"
    printf ',\n"microbench": '
    cat "${dir}/micro_stable.json"
    printf '\n}\n'
} > "${out}"

# Validate when a JSON tool is on the host; absence is a skip.
if command -v jq > /dev/null 2>&1; then
    jq -e '.schema == "aurora.bench_perf.v4"' "${out}" > /dev/null
    jq -e '.model.calibration.violations == 0' "${out}" > /dev/null
    jq -e '.serve_latency.submit_to_grid_done_ms.count ==
           .serve_latency.grids' "${out}" > /dev/null
    jq -e '.microbench.context | has("date") or has("host_name") | not' \
        "${out}" > /dev/null
    echo "bench_perf: ${out} validated"
fi

# ---- trend mode -----------------------------------------------------
# One JSONL line per invocation: the volatile when/where context plus
# the headline throughput numbers, so regressions are a `jq` over the
# trend file away without ever dirtying the committed baseline.
if [ "${append}" -eq 1 ]; then
    # First --append on a fresh checkout: the trend file (or the
    # directory an AURORA_BENCH_PERF_TREND override points into) may
    # not exist yet — create it instead of failing, so trend
    # collection can start from commit one.
    mkdir -p "$(dirname "${trend}")"
    touch "${trend}"
    {
        printf '{"date": "%s", "host_name": "%s", ' \
            "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$(hostname)"
        printf '"insts_per_bench": %d, ' "${insts}"
        awk -v insts="${total_insts}" -v ns="${total_ns}" 'BEGIN {
            printf "\"serial_insts_per_sec\": %.1f, ",
                   insts / (ns / 1e9)
        }'
        awk -v points="${grid_points}" \
            -v ns="$((grid_end - grid_start))" '
            /"gap_mean"/ {
                g = $0; gsub(/.*: /, "", g); gsub(/,.*/, "", g)
                printf "\"model_gap_mean\": %s, ", g
            }
            END {
                printf "\"model_grid_points_per_sec\": %.1f, ",
                       points / (ns / 1e9)
            }' "${dir}/model_cal.json"
        printf '"serve_grid_done_p50_ms": %s, ' \
            "$(quantile submit_to_grid_done_ms 0.5)"
        printf '"shard_insts_per_sec": '
        awk '/"shards"/ {
            n = $0; gsub(/.*"insts_per_sec": /, "", n)
            gsub(/,.*/, "", n)
            s = $0; gsub(/.*"shards": /, "", s); gsub(/,.*/, "", s)
            out = out (out == "" ? "" : ", ") "\"" s "\": " n
        } END { printf "{%s}}\n", out }' "${dir}/shard_sweep.json"
    } >> "${trend}"
    echo "bench_perf: appended trend line to ${trend}"
fi
echo "bench_perf: wrote ${out}"
