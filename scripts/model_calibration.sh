#!/usr/bin/env bash
# Calibrate the analytic bound-and-bottleneck model (src/analyze/model)
# against the cycle-accurate simulator on the paper's two study grids:
#
#   fig4:  {small, baseline, large} x issue {1,2} x memory latency
#          {17,35} over the integer suite — the resource-allocation
#          planes Figure 4 sweeps
#   fig9:  FPU issue-policy and queue-depth variants on the baseline
#          over the FP suite — the Figure 9 decoupling study
#
# For every (config, benchmark) job the predicted bound from
# `aurora_lint analyze-config --csv` is joined with the measured IPC
# from `aurora_sim --stats-csv` and two properties are enforced:
#
#   1. soundness   — bound >= measured IPC on EVERY job (a single
#                    violation fails the run: the model stopped being
#                    an upper bound)
#   2. usefulness  — mean relative gap (bound - ipc) / bound stays
#                    under AURORA_MODEL_GAP_LIMIT (default 0.75): a
#                    bound 4x above reality ranks nothing
#
# Knobs: AURORA_MODEL_INSTS (default 200000) scales run length;
# AURORA_MODEL_OUT=<file> additionally writes the gap distribution as
# a JSON fragment for scripts/bench_perf.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

SIM="${AURORA_SIM:-build/tools/aurora_sim}"
LINT="${AURORA_LINT:-build/tools/aurora_lint}"
INSTS="${AURORA_MODEL_INSTS:-200000}"
GAP_LIMIT="${AURORA_MODEL_GAP_LIMIT:-0.75}"

if [ ! -x "${SIM}" ] || [ ! -x "${LINT}" ]; then
    echo "model calibration: build aurora_sim and aurora_lint first" \
         "(cmake --preset release && cmake --build --preset release)" >&2
    exit 2
fi

dir="$(mktemp -d)"
trap 'rm -rf "${dir}"' EXIT

# One line per job: "<gap>" appended to gaps.txt; exits non-zero on a
# soundness violation or a benchmark the model CSV does not cover.
run_point() {
    local suite="$1"
    shift
    local spec=("$@")
    "${SIM}" --bench "${suite}" --insts "${INSTS}" "${spec[@]}" \
        --stats-csv "${dir}/sim.csv" > /dev/null
    "${LINT}" analyze-config "${spec[@]}" --profile "${suite}" --csv \
        > "${dir}/model.csv"
    awk -F, -v spec="${spec[*]}" '
        FNR == 1 { next }
        NR == FNR { bound[$1] = $2; next }
        {
            ipc = $3 / $4
            b = bound[$2]
            if (b == "") {
                printf "model calibration: no bound for %s (%s)\n", \
                       $2, spec > "/dev/stderr"
                bad = 1
                next
            }
            if (ipc > b + 1e-9) {
                printf "model calibration: VIOLATION %s (%s): " \
                       "bound %.6f < measured %.6f\n", \
                       $2, spec, b, ipc > "/dev/stderr"
                bad = 1
                next
            }
            printf "%.6f\n", (b - ipc) / b
        }
        END { exit bad }
    ' "${dir}/model.csv" "${dir}/sim.csv" >> "${dir}/gaps.txt"
}

echo "model calibration: fig4 grid (int suite, ${INSTS} insts/job)"
for model in small baseline large; do
    for issue in 1 2; do
        for latency in 17 35; do
            run_point int "model=${model}" "issue=${issue}" \
                "fetch=${issue}" "latency=${latency}"
        done
    done
done

echo "model calibration: fig9 grid (fp suite, ${INSTS} insts/job)"
FIG9_SPECS=(
    "fp_policy=single"
    "fp_policy=dual"
    "fp_policy=single fp_instq=2"
    "fp_policy=single fp_instq=10"
    "fp_policy=dual fp_instq=10"
    "fp_policy=single fp_loadq=1"
    "fp_policy=single fp_rob=4"
    "fp_policy=single fp_rob=12"
)
for spec in "${FIG9_SPECS[@]}"; do
    # shellcheck disable=SC2086
    run_point fp model=baseline ${spec}
done

jobs="$(wc -l < "${dir}/gaps.txt")"
sort -g "${dir}/gaps.txt" > "${dir}/sorted.txt"
read -r gap_mean gap_p95 gap_max <<EOF
$(awk '
    { sum += $1; v[NR] = $1 }
    END {
        p = v[int(NR * 0.95)]; if (int(NR * 0.95) < 1) p = v[1]
        printf "%.6f %.6f %.6f\n", sum / NR, p, v[NR]
    }
' "${dir}/sorted.txt")
EOF

echo "model calibration: ${jobs} jobs, 0 violations," \
     "gap mean=${gap_mean} p95=${gap_p95} max=${gap_max}"

if awk -v m="${gap_mean}" -v lim="${GAP_LIMIT}" \
        'BEGIN { exit !(m > lim) }'; then
    echo "model calibration: mean gap ${gap_mean} exceeds" \
         "${GAP_LIMIT} — the bound is too loose to rank designs" >&2
    exit 1
fi

if [ -n "${AURORA_MODEL_OUT:-}" ]; then
    cat > "${AURORA_MODEL_OUT}" <<EOF
{
  "schema": "aurora.model_calibration.v1",
  "jobs": ${jobs},
  "violations": 0,
  "insts_per_job": ${INSTS},
  "gap_mean": ${gap_mean},
  "gap_p95": ${gap_p95},
  "gap_max": ${gap_max}
}
EOF
    echo "model calibration: wrote ${AURORA_MODEL_OUT}"
fi
echo "model calibration: OK (bound dominated measured IPC on all ${jobs} jobs)"
