#!/usr/bin/env bash
# Determinism lint: the simulation core must be a pure function of its
# inputs, or golden stats, sweep replay, and journal resume all break.
#
# Bans, in src/core src/ipu src/fpu src/mem src/trace src/telemetry:
#   - wall-clock reads: std::chrono::system_clock, time(
#   - libc randomness:  rand(, std::random_device
#   - environment reads: getenv (env access belongs in util/env, so
#     every knob is named, typed, defaulted and logged in one place)
#
# std::chrono::steady_clock is deliberately ALLOWED: it measures how
# long a computation took (watchdog deadlines, sweep timing) without
# feeding back into what the computation produces.
#
# Exits non-zero listing every offending line.
set -euo pipefail
cd "$(dirname "$0")/.."

# src/telemetry is covered too: samplers and exporters take
# timestamps as event payloads, they never read clocks themselves
# (wall-clock sweep timelines live in src/harness, outside the core).
# src/serve is covered because resumed grids must replay
# bit-identically: the daemon may time things with steady_clock, but
# nothing in the service layer may consult wall clocks, randomness, or
# raw environment state when producing results.
# src/shard is covered for the same reason with a bigger blast
# radius: the distributed merge is only provably bit-identical to the
# serial run if no shard or coordinator decision depends on wall
# clocks, randomness, or raw env reads (leases use steady_clock;
# sabotage plans arrive via util/env).
# src/analyze and src/cost are covered because the analytic model and
# the RBE pricer feed golden-checked predictions (tests/golden/
# model_bounds.txt) and grid pruning decisions: a clock, random, or
# raw-env read there would silently re-rank every explored grid.
# src/obs is covered because the tracing/metrics plane must be
# provably inert: span ids are pure functions of the trace id, and
# flight/span timestamps come from steady clocks only — a wall-clock
# or random read there could leak back into golden-checked output.
DIRS=(src/core src/ipu src/fpu src/mem src/trace src/telemetry
      src/serve src/shard src/analyze src/cost src/obs)
STATUS=0

# pattern -> human explanation. Word boundaries keep e.g.
# "timestamp(" or "strand(" from matching.
check() {
    local pattern="$1" why="$2"
    # shellcheck disable=SC2046
    if hits=$(grep -RInE "${pattern}" "${DIRS[@]}" \
                  --include='*.cc' --include='*.hh' || true); then
        if [ -n "${hits}" ]; then
            echo "determinism lint: ${why}:"
            echo "${hits}" | sed 's/^/  /'
            STATUS=1
        fi
    fi
}

check 'std::chrono::system_clock' \
      'wall-clock time in the simulation core'
check '(^|[^a-zA-Z0-9_])time\(' \
      'libc time() in the simulation core'
check '(^|[^a-zA-Z0-9_])rand\(' \
      'libc rand() in the simulation core'
check 'std::random_device' \
      'nondeterministic seed source in the simulation core'
check '(^|[^a-zA-Z0-9_:])getenv' \
      'raw environment read outside util/env'

if [ "${STATUS}" -ne 0 ]; then
    echo "determinism lint: FAILED"
    exit 1
fi
echo "determinism lint: OK (${DIRS[*]})"
