#!/usr/bin/env bash
# Build, test, and regenerate every table/figure of the reproduction.
# Outputs land in test_output.txt and bench_output.txt at the repo
# root (the files EXPERIMENTS.md cites).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
    for b in build/bench/bench_*; do
        [ -x "$b" ] && [ -f "$b" ] || continue
        echo "########## $(basename "$b") ##########"
        "$b"
        echo
    done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
