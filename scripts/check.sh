#!/usr/bin/env bash
# Configure, build, and test one CMake preset:
#
#   scripts/check.sh            # release (RelWithDebInfo), full suite
#   scripts/check.sh asan       # AddressSanitizer + UBSan, full suite
#   scripts/check.sh tsan       # ThreadSanitizer; runs the sweep
#                               # harness / logging / simulator tests
#                               # with AURORA_JOBS=8 to surface races
#   scripts/check.sh all        # all three in sequence
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
    local preset="$1"
    echo "==== check: ${preset} ===="
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "$(nproc)"
    ctest --preset "${preset}" -j "$(nproc)"
}

case "${1:-release}" in
  all)
    run_preset release
    run_preset asan
    run_preset tsan
    ;;
  release|asan|tsan)
    run_preset "$1"
    ;;
  *)
    echo "usage: $0 [release|asan|tsan|all]" >&2
    exit 2
    ;;
esac
echo "check: OK"
