#!/usr/bin/env bash
# Configure, build, and test one CMake preset:
#
#   scripts/check.sh            # release (RelWithDebInfo), full suite
#   scripts/check.sh asan       # AddressSanitizer + UBSan, full suite
#   scripts/check.sh ubsan      # standalone UBSan, full suite
#   scripts/check.sh tsan       # ThreadSanitizer; runs the sweep
#                               # harness / logging / simulator tests
#                               # with AURORA_JOBS=8 to surface races
#   scripts/check.sh all        # all four in sequence
#
# Every full-suite preset includes the fault-storm smoke test
# (bench_ext_fault_storm via ctest), which proves every injected
# fault class is detected and a poisoned sweep still completes.
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
    local preset="$1"
    echo "==== check: ${preset} ===="
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "$(nproc)"
    ctest --preset "${preset}" -j "$(nproc)"
}

case "${1:-release}" in
  all)
    run_preset release
    run_preset asan
    run_preset ubsan
    run_preset tsan
    ;;
  release|asan|ubsan|tsan)
    run_preset "$1"
    ;;
  *)
    echo "usage: $0 [release|asan|ubsan|tsan|all]" >&2
    exit 2
    ;;
esac
echo "check: OK"
