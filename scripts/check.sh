#!/usr/bin/env bash
# Configure, build, and test one CMake preset:
#
#   scripts/check.sh            # release (RelWithDebInfo), full suite
#   scripts/check.sh asan       # AddressSanitizer + UBSan, full suite
#   scripts/check.sh ubsan      # standalone UBSan, full suite
#   scripts/check.sh tsan       # ThreadSanitizer; runs the sweep
#                               # harness / logging / simulator tests
#                               # with AURORA_JOBS=8 to surface races
#   scripts/check.sh resume     # crash/resume drill: SIGKILL a
#                               # journaled sweep mid-grid, resume it,
#                               # and diff against an uninterrupted run
#   scripts/check.sh lint       # static analysis: the determinism
#                               # lint (always) and clang-tidy over
#                               # compile_commands.json (when
#                               # clang-tidy is installed)
#   scripts/check.sh serve      # service load drill: hundreds of
#                               # small grids from parallel
#                               # aurora_submit clients, SIGKILL the
#                               # daemon mid-load, restart it, and
#                               # demand every resumed grid stream
#                               # bit-identical stats versus a serial
#                               # aurora_sim run; also checks quota and
#                               # preflight rejections and SIGTERM
#                               # drain exit status
#   scripts/check.sh shard      # distributed chaos drill: external
#                               # 4-shard aurora_shardd fleet, SIGKILL
#                               # two workers mid-grid plus one zombie
#                               # shard attempting a post-fence append,
#                               # then demand exactly-once completion
#                               # (AURORA_AUDIT=1) and a merged CSV
#                               # byte-identical to serial aurora_sim
#   scripts/check.sh model      # analytic-model calibration: run the
#                               # fig4/fig9 study grids through both
#                               # the simulator and `aurora_lint
#                               # analyze-config`, and require the
#                               # predicted bound to dominate measured
#                               # IPC on every job with a useful mean
#                               # gap (scripts/model_calibration.sh)
#   scripts/check.sh obs        # observability drill: exercise every
#                               # exporter (--stats-json, --stats-csv,
#                               # --trace-events, --sweep-trace, the
#                               # fault-storm timeline artifact) and
#                               # validate each with aurora_obs_check
#   scripts/check.sh all        # all four presets, all four drills,
#                               # and the lint stage
#
# Every full-suite preset includes the fault-storm smoke test
# (bench_ext_fault_storm via ctest), which proves every injected
# fault class is detected and a poisoned sweep still completes.
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
    local preset="$1"
    echo "==== check: ${preset} ===="
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "$(nproc)"
    ctest --preset "${preset}" -j "$(nproc)"
}

# Crash/resume drill against the real CLI binary: start a journaled
# suite sweep, SIGKILL it once the journal has content, resume it, and
# demand byte-identical CSV output versus an uninterrupted run. Races
# are tolerated by construction — if the sweep finishes before the
# kill lands, the resume degenerates to a pure replay and the diff
# still must pass.
run_resume_drill() {
    echo "==== check: resume ===="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" --target aurora_sim
    local sim=build/tools/aurora_sim
    local dir
    dir="$(mktemp -d)"
    trap 'rm -rf "${dir}"' RETURN
    local insts="${AURORA_CHECK_RESUME_INSTS:-200000}"

    "${sim}" --bench all --insts "${insts}" --csv \
        > "${dir}/golden.csv"

    "${sim}" --bench all --insts "${insts}" --csv \
        --journal "${dir}/sweep.ajrn" > "${dir}/victim.csv" 2>&1 &
    local pid=$!
    # Wait for the journal header to land, then kill mid-grid.
    while [ ! -s "${dir}/sweep.ajrn" ] && kill -0 "${pid}" 2>/dev/null
    do
        sleep 0.02
    done
    sleep 0.1
    if kill -9 "${pid}" 2>/dev/null; then
        echo "resume drill: sweep killed mid-grid"
    else
        echo "resume drill: sweep finished before the kill (replay)"
    fi
    wait "${pid}" 2>/dev/null || true

    "${sim}" --bench all --insts "${insts}" --csv \
        --journal "${dir}/sweep.ajrn" --resume > "${dir}/resumed.csv"
    diff -u "${dir}/golden.csv" "${dir}/resumed.csv"
    echo "resume drill: resumed output is byte-identical"
}

# Observability drill against the real binaries: produce every export
# format the telemetry subsystem offers and validate each one with
# aurora_obs_check (well-formed JSON, schema discriminator, monotonic
# trace timestamps, rectangular CSV). The fault-storm bench runs with
# the preflight off so its wedged grid points reach the runtime
# detectors and the timeline artifact gains retry/timeout/resume
# spans.
run_obs() {
    echo "==== check: obs ===="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" \
        --target aurora_sim aurora_obs_check bench_ext_fault_storm
    local sim=build/tools/aurora_sim
    local check=build/tools/aurora_obs_check
    local dir
    dir="$(mktemp -d)"
    trap 'rm -rf "${dir}"' RETURN
    local insts="${AURORA_CHECK_OBS_INSTS:-50000}"

    # Single run: structured stats, CSV, and the per-cycle pipeline
    # trace, each validated.
    "${sim}" --bench espresso --insts "${insts}" \
        --stats-json "${dir}/run.json" --stats-csv "${dir}/run.csv" \
        --trace-events "${dir}/pipeline.json" \
        --trace-event-cycles 2000 > /dev/null
    "${check}" stats "${dir}/run.json"
    "${check}" csv "${dir}/run.csv"
    "${check}" trace "${dir}/pipeline.json"

    # Suite sweep with per-job metric registries.
    "${sim}" --bench int --insts "${insts}" --csv \
        --stats-json "${dir}/suite.json" > /dev/null
    "${check}" stats "${dir}/suite.json"

    # Journaled sweep with the per-worker execution timeline.
    "${sim}" --bench int --insts "${insts}" --csv \
        --journal "${dir}/sweep.ajrn" \
        --sweep-trace "${dir}/sweep.json" > /dev/null
    "${check}" trace "${dir}/sweep.json"

    # Fault-storm timeline artifact with retry/timeout/resume spans.
    AURORA_BENCH_INSTS=20000 AURORA_PREFLIGHT=0 \
        AURORA_TIMELINE_OUT="${dir}/fault_storm.json" \
        build/bench/bench_ext_fault_storm > /dev/null
    "${check}" trace "${dir}/fault_storm.json"

    # Fleet chaos drill: a two-shard swarm grid with one shard
    # SIGKILLed mid-grid, causal tracing and the flight recorder on.
    # The dead worker leaves a write-through flight file that must
    # validate, the coordinator's fence record must name the epoch
    # that actually welcomed that worker, the merged trace must close
    # its parentage, and the CSV must stay byte-identical to serial —
    # observability on, chaos on, results unchanged.
    cmake --build --preset release -j "$(nproc)" \
        --target aurora_swarm
    local swarm=build/tools/aurora_swarm
    local obsdir="${dir}/swarm_jd/obs"
    "${swarm}" --socket "${dir}/swarm.sock" \
        --journal-dir "${dir}/swarm_jd" --shards 2 --bench int \
        --insts "${insts}" --fault 0:kill-shard:1 --stats \
        --trace-out "${dir}/fleet.json" --csv \
        > "${dir}/fleet.csv" 2> "${dir}/fleet.log"
    "${sim}" --bench int --insts "${insts}" --csv \
        > "${dir}/fleet_serial.csv"
    cmp "${dir}/fleet.csv" "${dir}/fleet_serial.csv"
    grep -q 'migrated=[1-9]' "${dir}/fleet.log"
    "${check}" trace "${dir}/fleet.json" | grep -q 'parentage closed'
    "${check}" flight "${obsdir}/swarm.flight"
    local flight epoch
    for flight in "${obsdir}"/shard-e*.flight; do
        "${check}" flight "${flight}"
    done
    # The fence record's epoch must match a worker that actually
    # welcomed under that epoch — the postmortem join the flight
    # recorder exists for.
    epoch="$(grep '"event": "lease.fence"' "${obsdir}/swarm.flight" \
        | head -n 1 | grep -o '"detail": "epoch=[0-9]*' \
        | grep -o '[0-9]*$')"
    [ -n "${epoch}" ]
    grep -q "\"event\": \"welcome\".*epoch=${epoch} " \
        "${obsdir}/shard-e${epoch}.flight"
    "${check}" postmortem "${obsdir}" 6 | grep -q 'fence @'
    echo "obs drill: every exporter validated, fleet chaos traced"
}

# Service load drill against the real daemon and client binaries.
#
# Phase 1 — load + crash: N parallel aurora_submit clients (distinct
# tenants) each fire a burst of unique single-job grids at one daemon
# with --no-wait, collecting fingerprints. The daemon is SIGKILLed
# while work is still in flight, then restarted on the same spool.
# Phase 2 — resume + bit-identity: every fingerprint is re-attached;
# each grid must finish and its stats CSV must be byte-identical to a
# serial aurora_sim run of the same benchmark/instruction budget. The
# restarted daemon must then drain on SIGTERM and exit 0.
# Phase 3 — admission: a quota-1 daemon must refuse a second grid with
# AUR201 and a preflight-rejected machine spec with AUR010, and still
# drain cleanly.
#
# Races are tolerated by construction: if the daemon finishes the
# whole load before the kill lands, the attach phase degenerates to a
# pure journal replay and the byte-compare still must pass.
run_serve_drill() {
    echo "==== check: serve ===="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" \
        --target aurora_serve aurora_submit aurora_sim
    local serve=build/tools/aurora_serve
    local submit=build/tools/aurora_submit
    local sim=build/tools/aurora_sim
    local dir
    dir="$(mktemp -d)"
    trap 'rm -rf "${dir}"' RETURN
    local sock="${dir}/serve.sock"
    local spool="${dir}/spool"
    local clients="${AURORA_CHECK_SERVE_CLIENTS:-8}"
    local grids="${AURORA_CHECK_SERVE_GRIDS:-25}"
    local insts="${AURORA_CHECK_SERVE_INSTS:-20000}"

    # Readiness probe: the socket file alone is not enough (a stale
    # file from a SIGKILLed daemon lingers until the next bind), so
    # demand an actual status round-trip.
    wait_for_daemon() {
        local i=0
        while [ "${i}" -lt 200 ]; do
            if "${submit}" --socket "$1" --tenant probe --status \
                    > /dev/null 2>&1; then
                return 0
            fi
            sleep 0.05
            i=$((i + 1))
        done
        echo "serve drill: daemon on $1 never became ready" >&2
        return 1
    }

    # ---- phase 1: parallel submission storm, then SIGKILL ----------
    "${serve}" --socket "${sock}" --spool "${spool}" \
        --workers "$(nproc)" --quota-grids 64 --quiet &
    local daemon=$!
    wait_for_daemon "${sock}"

    local c
    local pids=()
    for c in $(seq 1 "${clients}"); do
        (
            set -e
            for g in $(seq 1 "${grids}"); do
                # Unique instruction budget per (client, grid) keeps
                # every fingerprint distinct across all tenants.
                n=$((insts + c * 101 + g))
                "${submit}" --socket "${sock}" --tenant "tenant${c}" \
                    --bench espresso --insts "${n}" --no-wait \
                    --timeout-ms 120000 --quiet |
                    awk -v n="${n}" '/^accepted/ { print $2, n }'
            done > "${dir}/fps.${c}"
        ) &
        pids+=("$!")
    done
    local pid
    for pid in "${pids[@]}"; do
        wait "${pid}"
    done
    for c in $(seq 1 "${clients}"); do
        if [ "$(wc -l < "${dir}/fps.${c}")" -ne "${grids}" ]; then
            echo "serve drill: client ${c} lost submissions" >&2
            exit 1
        fi
    done

    if kill -9 "${daemon}" 2>/dev/null; then
        echo "serve drill: daemon SIGKILLed mid-load"
    fi
    wait "${daemon}" 2>/dev/null || true

    # ---- phase 2: restart, re-attach everything, byte-compare ------
    "${serve}" --socket "${sock}" --spool "${spool}" \
        --workers "$(nproc)" --quota-grids 64 --quiet &
    daemon=$!
    wait_for_daemon "${sock}"

    local total=0
    local fp n
    for c in $(seq 1 "${clients}"); do
        while read -r fp n; do
            "${submit}" --socket "${sock}" --tenant "tenant${c}" \
                --attach "${fp}" --timeout-ms 120000 --quiet \
                --stats-csv "${dir}/grid.csv" > /dev/null
            "${sim}" --bench espresso --insts "${n}" \
                --stats-csv "${dir}/serial.csv" > /dev/null
            cmp "${dir}/grid.csv" "${dir}/serial.csv"
            total=$((total + 1))
        done < "${dir}/fps.${c}"
    done
    echo "serve drill: ${total} grids resumed bit-identical to serial"

    kill -TERM "${daemon}"
    wait "${daemon}"
    echo "serve drill: SIGTERM drain exited 0"

    # ---- phase 3: admission control ---------------------------------
    local sock2="${dir}/admit.sock"
    "${serve}" --socket "${sock2}" --spool "${dir}/spool2" \
        --workers 1 --quota-grids 1 --quiet &
    daemon=$!
    wait_for_daemon "${sock2}"

    "${submit}" --socket "${sock2}" --tenant alice --bench espresso \
        --insts 400000 --no-wait --quiet > /dev/null
    if "${submit}" --socket "${sock2}" --tenant alice \
            --bench espresso --insts 400001 --no-wait --quiet \
            2> "${dir}/reject.err" > /dev/null; then
        echo "serve drill: over-quota grid was not refused" >&2
        exit 1
    fi
    grep -q AUR201 "${dir}/reject.err"
    if "${submit}" --socket "${sock2}" --tenant bob \
            --bench espresso --insts 10000 --no-wait --quiet \
            fp_buses=0 2> "${dir}/preflight.err" > /dev/null; then
        echo "serve drill: preflight-rejected grid was accepted" >&2
        exit 1
    fi
    grep -q AUR010 "${dir}/preflight.err"
    echo "serve drill: AUR201 quota and AUR010 preflight refusals OK"

    kill -TERM "${daemon}"
    wait "${daemon}"
    echo "serve drill: admission daemon drained, exited 0"
}

# Distributed chaos drill against the real binaries: an external-mode
# coordinator (aurora_swarm --spawn external) with a four-worker
# aurora_shardd fleet owned by this script. Two workers are SIGKILLed
# mid-grid; a third runs the zombie-append sabotage (silent past its
# lease, then one post-fence Result the coordinator must refuse with
# AUR304). Every job must complete exactly once under AURORA_AUDIT=1
# and the merged CSV must be byte-identical to a serial aurora_sim
# run of the same grid.
run_shard_drill() {
    echo "==== check: shard ===="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" \
        --target aurora_swarm aurora_shardd aurora_sim
    local swarm=build/tools/aurora_swarm
    local shardd=build/tools/aurora_shardd
    local sim=build/tools/aurora_sim
    local dir
    dir="$(mktemp -d)"
    trap 'rm -rf "${dir}"' RETURN
    local sock="${dir}/swarm.sock"
    local jdir="${dir}/journals"
    local insts="${AURORA_CHECK_SHARD_INSTS:-600000}"

    AURORA_AUDIT=1 "${sim}" --bench all --insts "${insts}" --csv \
        > "${dir}/serial.csv"

    AURORA_AUDIT=1 "${swarm}" --socket "${sock}" \
        --journal-dir "${jdir}" --shards 4 --spawn external \
        --bench all --insts "${insts}" --csv --lease-ms 800 \
        --stats > "${dir}/merged.csv" 2> "${dir}/swarm.log" &
    local coord=$!
    while [ ! -S "${sock}" ] && kill -0 "${coord}" 2>/dev/null; do
        sleep 0.02
    done

    local w
    local wpids=()
    for w in 1 2 3; do
        "${shardd}" --socket "${sock}" --journal-dir "${jdir}" &
        wpids+=("$!")
    done
    # The fourth worker is the zombie: it goes silent after one job,
    # outlives its fence, then attempts one late append + Result.
    AURORA_SHARD_FAULT="zombie-append:1" \
        "${shardd}" --socket "${sock}" --journal-dir "${jdir}" &
    wpids+=("$!")

    sleep 0.4
    kill -9 "${wpids[0]}" "${wpids[1]}" 2>/dev/null || true
    echo "shard drill: SIGKILLed two of four shards mid-grid"

    local status=0
    wait "${coord}" || status=$?
    if [ "${status}" -ne 0 ]; then
        echo "shard drill: coordinator failed (${status})" >&2
        cat "${dir}/swarm.log" >&2
        exit 1
    fi
    local pid
    for pid in "${wpids[@]}"; do
        wait "${pid}" 2>/dev/null || true
    done

    cmp "${dir}/serial.csv" "${dir}/merged.csv"
    echo "shard drill: merged CSV byte-identical to serial (audit on)"
    grep -q "AUR302" "${dir}/swarm.log"
    grep -q "AUR304" "${dir}/swarm.log"
    grep "swarm stats:" "${dir}/swarm.log"
    echo "shard drill: kills fenced (AUR302) and the zombie append" \
         "was refused behind the fence (AUR304)"
}

# Analytic-model calibration drill: predicted bounds must dominate
# measured IPC across the paper's study grids (soundness) while
# staying close enough to rank designs (usefulness). The real
# assertions live in scripts/model_calibration.sh.
run_model_drill() {
    echo "==== check: model ===="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" \
        --target aurora_sim aurora_lint
    scripts/model_calibration.sh
}

# Static analysis. The determinism lint is pure grep and always runs.
# clang-tidy consumes the compile_commands.json the release preset
# exports (CMAKE_EXPORT_COMPILE_COMMANDS in the top-level
# CMakeLists.txt) and is gated on availability: the reference
# container ships only gcc, so its absence is a skip, not a failure.
run_lint() {
    echo "==== check: lint ===="
    scripts/lint_determinism.sh
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "lint: clang-tidy not installed; skipping tidy stage"
        return 0
    fi
    cmake --preset release
    local db=build/compile_commands.json
    if [ ! -f "${db}" ]; then
        echo "lint: ${db} missing" >&2
        return 1
    fi
    # Project sources only: generated/third-party TUs in the database
    # (GTest, google-benchmark) are not ours to lint.
    git ls-files 'src/*.cc' 'tools/*.cc' |
        xargs clang-tidy -p build --quiet
    echo "lint: clang-tidy OK"
}

case "${1:-release}" in
  all)
    run_preset release
    run_preset asan
    run_preset ubsan
    run_preset tsan
    run_resume_drill
    run_serve_drill
    run_shard_drill
    run_obs
    run_model_drill
    run_lint
    ;;
  release|asan|ubsan|tsan)
    run_preset "$1"
    ;;
  resume)
    run_resume_drill
    ;;
  model)
    run_model_drill
    ;;
  serve)
    run_serve_drill
    ;;
  shard)
    run_shard_drill
    ;;
  obs)
    run_obs
    ;;
  lint)
    run_lint
    ;;
  *)
    echo "usage: $0 [release|asan|ubsan|tsan|resume|serve|shard|obs|model|lint|all]" >&2
    exit 2
    ;;
esac
echo "check: OK"
